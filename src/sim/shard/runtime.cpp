#include "src/sim/shard/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/guard.hpp"
#include "src/sim/kernel.hpp"
#include "src/sim/shard/partition.hpp"

namespace tydi::sim::shard {

namespace {

/// Sense-reversing barrier: bounded spin, then yield (stays correct and
/// non-pathological when shards exceed hardware cores). A phase transition
/// publishes with release/acquire ordering, so everything a thread wrote
/// before arriving is visible to every thread after leaving — the mailbox
/// cells and reduction slots need no locks of their own.
///
/// The barrier is *abortable*: once the run guard's stop flag is raised,
/// every wait (current and future) returns immediately, so a watchdog abort
/// cannot strand threads waiting for a partner that already unwound. After
/// the flag is up, threads must not rely on barrier separation — they only
/// ever check the flag and exit their round loops.
class SpinBarrier {
 public:
  SpinBarrier(int parties, const RunGuard& guard)
      : parties_(parties), guard_(guard) {}

  void arrive_and_wait() {
    if (guard_.stop_requested()) return;
    std::uint32_t phase = phase_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      phase_.fetch_add(1, std::memory_order_acq_rel);
      return;
    }
    int spins = 0;
    while (phase_.load(std::memory_order_acquire) == phase) {
      if (++spins > 512) {
        if (guard_.stop_requested()) return;
        std::this_thread::yield();
      }
    }
  }

 private:
  const int parties_;
  const RunGuard& guard_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint32_t> phase_{0};
};

struct Msg {
  double time = 0.0;
  std::int32_t channel = -1;
  /// Ack batch size (acks only). Exact mode always posts 1; credit mode
  /// posts one batched message per channel per round.
  std::int32_t count = 0;
  /// Payload (delivers only). Exact mode also keeps it in the quiescent
  /// channel register; credit mode has up to `credit_window` packets in
  /// flight, so the message is the only carrier.
  Packet packet;
  bool is_ack = false;
};

/// K×K single-producer cells. Cell (src, dst) is written only by shard
/// `src` during a processing phase and drained only by shard `dst` during a
/// drain phase; the two phases are always separated by a barrier, so plain
/// vectors suffice.
class Mailboxes {
 public:
  explicit Mailboxes(int shards)
      : shards_(shards), cells_(static_cast<std::size_t>(shards) * shards) {}

  std::vector<Msg>& cell(int src, int dst) {
    return cells_[static_cast<std::size_t>(src) * shards_ + dst].msgs;
  }

  /// Drains every inbound cell of `dst` (in source-shard order) into the
  /// kernel's queue. The canonical event order makes the drain order
  /// irrelevant, but keeping it fixed makes runs reproducible to the byte.
  void drain_into(int dst, Kernel& kernel) {
    for (int src = 0; src < shards_; ++src) {
      std::vector<Msg>& box = cell(src, dst);
      for (const Msg& msg : box) {
        if (msg.is_ack) {
          kernel.enqueue_remote_ack(msg.time, msg.channel, msg.count);
        } else {
          kernel.enqueue_remote_deliver(msg.time, msg.channel, msg.packet);
        }
      }
      box.clear();
    }
  }

  /// Messages parked in `dst`'s inbound cells. Forensics only — called
  /// after the worker threads have joined.
  [[nodiscard]] std::size_t inbound_depth(int dst) {
    std::size_t total = 0;
    for (int src = 0; src < shards_; ++src) total += cell(src, dst).size();
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::vector<Msg> msgs;
  };
  int shards_;
  std::vector<Cell> cells_;
};

class ShardRouter : public CrossRouter {
 public:
  ShardRouter(Mailboxes& mail, int from, FaultInjector* fault)
      : mail_(mail), from_(from), fault_(fault) {}

  void post_deliver(int to_shard, double time, std::int32_t channel,
                    Packet packet) override {
    delay_fault();
    mail_.cell(from_, to_shard)
        .push_back(Msg{time, channel, 0, packet, false});
  }
  void post_ack(int to_shard, double time, std::int32_t channel,
                std::int32_t count) override {
    delay_fault();
    mail_.cell(from_, to_shard)
        .push_back(Msg{time, channel, count, Packet{}, true});
  }

 private:
  /// Wall-clock-only fault: the post is held back in real time but still
  /// lands in the same protocol round (the mailbox cell is drained only
  /// after the next barrier), so results must not change.
  void delay_fault() {
    if (fault_ != nullptr &&
        fault_->fires(FaultInjector::Site::kMailboxPost)) {
      fault_->spin_delay();
    }
  }

  Mailboxes& mail_;
  const int from_;
  FaultInjector* fault_;
};

/// Cache-line-isolated per-shard reduction slot. Written by its shard
/// before a barrier, read by every shard after it.
struct alignas(64) Slot {
  double next_time = kInfiniteTime;
  double ack_bound = kInfiniteTime;
  std::uint32_t acks_posted = 0;
  /// Credit mode: accumulated-but-unflushed ack batches (quiescence check).
  std::int64_t pending_batches = 0;
  /// Credit mode: the shard's last dispatched event time (straggler-batch
  /// flush timestamp).
  double last_time = 0.0;
};

/// Per-shard observability accumulators, written only by the owning shard
/// thread during the run and read on the main thread after join — no
/// atomics needed, cache-line isolated so the writes never false-share.
struct alignas(64) ObsSlot {
  std::int64_t barrier_wait_ns = 0;
  std::uint64_t rounds = 0;
};

struct RoundState {
  SpinBarrier barrier;
  Mailboxes mail;
  std::vector<Slot> slots;
  std::vector<ObsSlot> obs;
  double lookahead_ns;
  double max_time_ns;
  RunGuard& guard;
  std::atomic<bool> capped{false};

  RoundState(int shards, double lookahead, double max_time, RunGuard& g)
      : barrier(shards, g),
        mail(shards),
        slots(shards),
        obs(shards),
        lookahead_ns(lookahead),
        max_time_ns(max_time),
        guard(g) {}
};

/// Credit-mode round loop: no ack-risk bound, no same-timestamp fixpoint.
/// Every round is a window round with H = T + lookahead — the credit
/// horizon guarantees no shard needs a remote ack inside the window
/// (exhausted credits queue in the outbox instead of blocking the round) —
/// and the acks consumed during the round flush as one batch per channel at
/// the window boundary. The degenerate H == T case (a zero-latency cut
/// channel) processes single timestamps but still batches acks, so time
/// never runs backwards: an ack consumed at T is processed by the source at
/// T in the next round.
///
/// Quiescence needs two conditions, not one: every queue idle (t == inf)
/// AND no ack batch left unflushed. Fault injection can withhold a flush
/// past the round that filled it, so an idle barrier with outstanding
/// batches force-flushes and goes around — except under the deliberate
/// hang fault, which keeps withholding until the watchdog aborts the run.
void shard_main_credit(int me, int shards, Kernel& kernel, RoundState& state,
                       FaultInjector& inject) {
  auto arrive = [&] {
    if (inject.fires(FaultInjector::Site::kBarrierArrive)) {
      inject.spin_delay();
    }
    // Two steady_clock reads per wait: the wait itself spins/yields, so the
    // clock cost disappears into it (gated by the sim obs-overhead bench).
    const auto wait_start = std::chrono::steady_clock::now();
    state.barrier.arrive_and_wait();
    state.obs[me].barrier_wait_ns +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wait_start)
            .count();
  };
  for (;;) {
    if (state.guard.stop_requested()) return;
    ++state.obs[me].rounds;
    state.mail.drain_into(me, kernel);
    state.slots[me].next_time = kernel.next_time();
    state.slots[me].pending_batches = kernel.pending_ack_batches();
    state.slots[me].last_time = kernel.last_event_time();
    arrive();
    if (state.guard.stop_requested()) return;

    double t = kInfiniteTime;
    std::int64_t pending = 0;
    double flush_time = 0.0;
    for (int s = 0; s < shards; ++s) {
      t = std::min(t, state.slots[s].next_time);
      pending += state.slots[s].pending_batches;
      flush_time = std::max(flush_time, state.slots[s].last_time);
    }
    if (t == kInfiniteTime) {
      if (pending == 0) break;  // global quiescence: idle AND no batch owed
      // Idle queues but withheld batches: force-flush the stragglers at
      // the latest dispatched time and go around (all reduced values, so
      // every shard picks the same timestamp). Under the hang fault the
      // flush is a no-op and this loop spins at zero processed events —
      // exactly the livelock the watchdog converts into an abort.
      kernel.flush_ack_batches(flush_time, /*force=*/true);
      arrive();  // flush posts before the next round's drains
      continue;
    }
    if (t > state.max_time_ns) {
      if (me == 0) state.capped.store(true, std::memory_order_relaxed);
      break;
    }

    if (inject.fires(FaultInjector::Site::kRoundStall)) inject.spin_delay();

    double horizon = t + state.lookahead_ns;
    if (horizon > t) {
      kernel.process_events(horizon, /*inclusive=*/false, state.max_time_ns);
      kernel.flush_ack_batches(horizon);
    } else {
      kernel.process_events(t, /*inclusive=*/true, state.max_time_ns);
      kernel.flush_ack_batches(t);
    }
    arrive();
  }
}

void shard_main(int me, int shards, Kernel& kernel, RoundState& state,
                FaultInjector& inject) {
  auto arrive = [&] {
    if (inject.fires(FaultInjector::Site::kBarrierArrive)) {
      inject.spin_delay();
    }
    // Two steady_clock reads per wait: the wait itself spins/yields, so the
    // clock cost disappears into it (gated by the sim obs-overhead bench).
    const auto wait_start = std::chrono::steady_clock::now();
    state.barrier.arrive_and_wait();
    state.obs[me].barrier_wait_ns +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wait_start)
            .count();
  };
  for (;;) {
    if (state.guard.stop_requested()) return;
    ++state.obs[me].rounds;
    state.mail.drain_into(me, kernel);
    state.slots[me].next_time = kernel.next_time();
    state.slots[me].ack_bound = kernel.ack_risk_bound();
    arrive();
    if (state.guard.stop_requested()) return;

    double t = kInfiniteTime;
    double bound = kInfiniteTime;
    for (int s = 0; s < shards; ++s) {
      t = std::min(t, state.slots[s].next_time);
      bound = std::min(bound, state.slots[s].ack_bound);
    }
    if (t == kInfiniteTime) break;  // global quiescence
    if (t > state.max_time_ns) {
      // Same t on every thread: all conclude the cutoff together.
      if (me == 0) state.capped.store(true, std::memory_order_relaxed);
      break;
    }

    if (inject.fires(FaultInjector::Site::kRoundStall)) inject.spin_delay();

    double horizon = std::min(t + state.lookahead_ns, bound);
    if (horizon > t) {
      // Window round: no remote ack can land before `horizon`, and every
      // cross-shard delivery posted now lands at ≥ t + lookahead.
      kernel.process_events(horizon, /*inclusive=*/false, state.max_time_ns);
      arrive();
      continue;
    }

    // Timestep round: a cross-shard channel could be acknowledged at `t`.
    // Process exactly this timestamp, then iterate same-time ack exchange
    // to a fixpoint so the source sees the ack at the same timestamp the
    // single-queue engine would.
    kernel.process_events(t, /*inclusive=*/true, state.max_time_ns);
    state.slots[me].acks_posted = kernel.take_acks_posted();
    arrive();
    for (;;) {
      if (state.guard.stop_requested()) return;
      std::uint32_t acks = 0;
      for (int s = 0; s < shards; ++s) acks += state.slots[s].acks_posted;
      if (acks == 0) break;
      state.mail.drain_into(me, kernel);
      arrive();  // drains before the next posts
      kernel.process_events(t, /*inclusive=*/true, state.max_time_ns);
      state.slots[me].acks_posted = kernel.take_acks_posted();
      arrive();
    }
  }
}

/// Fills the per-shard forensics snapshots. Runs on the main thread after
/// every worker (and the watchdog) has stopped — for *every* run, not only
/// aborts: a healthy run's end-state (queue/mailbox depths, credit
/// occupancy) is the baseline the abort snapshots are read against.
void collect_forensics(SimResult& result, const std::vector<Kernel*>& kernels,
                       Mailboxes* mail) {
  result.shard_forensics.clear();
  for (std::size_t s = 0; s < kernels.size(); ++s) {
    const Kernel& k = *kernels[s];
    ShardForensics f;
    f.shard = static_cast<int>(s);
    f.window_time_ns = k.next_time();
    f.last_event_time_ns = k.last_event_time();
    f.events_processed = k.events_processed();
    f.queue_depth = k.queue_depth();
    f.mailbox_depth =
        mail != nullptr ? mail->inbound_depth(static_cast<int>(s)) : 0;
    f.credit_balance = k.credit_balance();
    f.unacked = k.unacked_total();
    f.pending_ack_batches = k.pending_ack_batches();
    result.shard_forensics.push_back(std::move(f));
  }
}

/// Publishes the finished run to the process registry: outcome counters,
/// round/barrier telemetry, and `tydi.sim.last.*` gauges aggregated from
/// the forensics snapshots (last-run-wins, the live-introspection view).
void publish_run_metrics(const SimResult& result, const RoundState* state,
                         int shards) {
  auto& reg = obs::MetricsRegistry::global();
  static obs::Counter& runs = reg.counter("tydi.sim.runs");
  static obs::Counter& aborted = reg.counter("tydi.sim.aborted");
  static obs::Counter& deadlocks = reg.counter("tydi.sim.deadlocks");
  static obs::Counter& events = reg.counter("tydi.sim.events");
  static obs::Counter& rounds = reg.counter("tydi.sim.rounds");
  ++runs;
  if (result.aborted) ++aborted;
  if (result.deadlock) ++deadlocks;
  events += result.events_processed;
  if (state != nullptr) {
    obs::Histogram& wait_us = reg.histogram("tydi.sim.barrier_wait_us");
    std::uint64_t total_rounds = 0;
    for (int s = 0; s < shards; ++s) {
      total_rounds = std::max(total_rounds, state->obs[s].rounds);
      wait_us.observe(static_cast<double>(state->obs[s].barrier_wait_ns) /
                      1000.0);
    }
    rounds += total_rounds;
  }
  double queue_depth = 0, mailbox_depth = 0, credit_balance = 0, unacked = 0,
         pending_batches = 0;
  for (const ShardForensics& f : result.shard_forensics) {
    queue_depth += static_cast<double>(f.queue_depth);
    mailbox_depth += static_cast<double>(f.mailbox_depth);
    credit_balance += static_cast<double>(f.credit_balance);
    unacked += static_cast<double>(f.unacked);
    pending_batches += static_cast<double>(f.pending_ack_batches);
  }
  reg.gauge("tydi.sim.last.shards").set(shards);
  reg.gauge("tydi.sim.last.queue_depth").set(queue_depth);
  reg.gauge("tydi.sim.last.mailbox_depth").set(mailbox_depth);
  reg.gauge("tydi.sim.last.credit_balance").set(credit_balance);
  reg.gauge("tydi.sim.last.unacked").set(unacked);
  reg.gauge("tydi.sim.last.pending_ack_batches").set(pending_batches);
  reg.gauge("tydi.sim.last.events").set(
      static_cast<double>(result.events_processed));
  reg.gauge("tydi.sim.last.aborted").set(result.aborted ? 1.0 : 0.0);
}

}  // namespace

SimResult run_sharded(SimGraph& graph, const SimOptions& options,
                      support::DiagnosticEngine& diags) {
  obs::Span run_span("sim.run");
  run_span.arg("shards", static_cast<std::int64_t>(options.shards));
  PartitionStats stats = partition_graph(
      graph, options.shards, options.auto_partition,
      options.component_weights.empty() ? nullptr
                                        : &options.component_weights);

  // Credit negotiation (AckMode::kCredit): every cut channel gets a
  // window-sized send budget; the register protocol stays in place for
  // shard-local channels, so a single-shard run is the exact engine either
  // way.
  const bool credit = options.ack_mode == AckMode::kCredit &&
                      graph.shard_count > 1 && stats.cross_channels > 0;
  if (credit) {
    std::int32_t window = std::max(1, options.credit_window);
    for (Channel& c : graph.channels) {
      if (c.cross_shard()) {
        c.credit = true;
        c.credits = window;
      }
    }
  }

  RunGuard guard;
  Watchdog::Config wd_config;
  wd_config.timeout_ms = options.watchdog_timeout_ms;
  wd_config.wall_clock_budget_ms = options.wall_clock_budget_ms;
  wd_config.rss_budget_mb = options.rss_budget_mb;

  if (graph.shard_count <= 1) {
    // Single shard: no cross-shard protocol, so no fault sites — but the
    // watchdog and the event/wall-clock/RSS budgets still apply.
    Kernel kernel(graph, options, diags, /*shard=*/0, /*router=*/nullptr);
    kernel.set_guard(&guard, options.max_events);
    kernel.seed();
    {
      Watchdog watchdog(guard, wd_config);
      kernel.process_events(kInfiniteTime, /*inclusive=*/false,
                            options.max_time_ns);
    }
    const bool aborted = guard.cause() != StopCause::kNone;
    double end_time =
        kernel.capped() ? options.max_time_ns : kernel.last_event_time();
    std::vector<Kernel*> kernels{&kernel};
    SimResult result = merge_results(graph, kernels, end_time, diags, aborted);
    if (aborted) {
      result.aborted = true;
      result.abort_reason = std::string(to_string(guard.cause()));
    }
    collect_forensics(result, kernels, /*mail=*/nullptr);
    publish_run_metrics(result, /*state=*/nullptr, /*shards=*/1);
    return result;
  }

  const int shards = graph.shard_count;
  RoundState state(shards, stats.min_cross_latency_ns, options.max_time_ns,
                   guard);

  std::vector<std::unique_ptr<FaultInjector>> injectors;
  std::vector<std::unique_ptr<ShardRouter>> routers;
  std::vector<std::unique_ptr<Kernel>> kernels;
  injectors.reserve(shards);
  routers.reserve(shards);
  kernels.reserve(shards);
  const bool faulty = options.fault.enabled();
  for (int s = 0; s < shards; ++s) {
    injectors.push_back(std::make_unique<FaultInjector>(options.fault, s));
    routers.push_back(std::make_unique<ShardRouter>(
        state.mail, s, faulty ? injectors[s].get() : nullptr));
    kernels.push_back(
        std::make_unique<Kernel>(graph, options, diags, s, routers[s].get()));
    kernels[s]->set_guard(&guard, options.max_events);
    if (faulty) kernels[s]->set_fault_injector(injectors[s].get());
  }
  // Seed single-threaded (behaviour on_start may post cross-shard traffic;
  // the mailboxes are drained at the first round).
  for (auto& kernel : kernels) kernel->seed();

  {
    Watchdog watchdog(guard, wd_config);
    std::vector<std::thread> threads;
    threads.reserve(shards);
    for (int s = 0; s < shards; ++s) {
      threads.emplace_back([&, s, credit]() {
        obs::Span span("sim.shard");
        span.arg("shard", static_cast<std::int64_t>(s))
            .arg("mode", credit ? "credit" : "exact");
        (credit ? shard_main_credit : shard_main)(s, shards, *kernels[s],
                                                  state, *injectors[s]);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }  // watchdog joined: forensics below read a quiet world

  const bool aborted = guard.cause() != StopCause::kNone;
  double end_time = 0.0;
  if (state.capped.load(std::memory_order_relaxed)) {
    end_time = options.max_time_ns;
  } else {
    for (const auto& kernel : kernels) {
      end_time = std::max(end_time, kernel->last_event_time());
    }
  }
  std::vector<Kernel*> kernel_ptrs;
  kernel_ptrs.reserve(shards);
  for (auto& kernel : kernels) kernel_ptrs.push_back(kernel.get());
  SimResult result =
      merge_results(graph, kernel_ptrs, end_time, diags, aborted);
  if (aborted) {
    result.aborted = true;
    result.abort_reason = std::string(to_string(guard.cause()));
  }
  collect_forensics(result, kernel_ptrs, &state.mail);
  publish_run_metrics(result, &state, shards);
  return result;
}

}  // namespace tydi::sim::shard
