#include "src/sim/shard/runtime.hpp"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/sim/kernel.hpp"
#include "src/sim/shard/partition.hpp"

namespace tydi::sim::shard {

namespace {

/// Sense-reversing barrier: bounded spin, then yield (stays correct and
/// non-pathological when shards exceed hardware cores). A phase transition
/// publishes with release/acquire ordering, so everything a thread wrote
/// before arriving is visible to every thread after leaving — the mailbox
/// cells and reduction slots need no locks of their own.
class SpinBarrier {
 public:
  explicit SpinBarrier(int parties) : parties_(parties) {}

  void arrive_and_wait() {
    std::uint32_t phase = phase_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      phase_.fetch_add(1, std::memory_order_acq_rel);
      return;
    }
    int spins = 0;
    while (phase_.load(std::memory_order_acquire) == phase) {
      if (++spins > 512) std::this_thread::yield();
    }
  }

 private:
  const int parties_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint32_t> phase_{0};
};

struct Msg {
  double time = 0.0;
  std::int32_t channel = -1;
  /// Ack batch size (acks only). Exact mode always posts 1; credit mode
  /// posts one batched message per channel per round.
  std::int32_t count = 0;
  /// Payload (delivers only). Exact mode also keeps it in the quiescent
  /// channel register; credit mode has up to `credit_window` packets in
  /// flight, so the message is the only carrier.
  Packet packet;
  bool is_ack = false;
};

/// K×K single-producer cells. Cell (src, dst) is written only by shard
/// `src` during a processing phase and drained only by shard `dst` during a
/// drain phase; the two phases are always separated by a barrier, so plain
/// vectors suffice.
class Mailboxes {
 public:
  explicit Mailboxes(int shards)
      : shards_(shards), cells_(static_cast<std::size_t>(shards) * shards) {}

  std::vector<Msg>& cell(int src, int dst) {
    return cells_[static_cast<std::size_t>(src) * shards_ + dst].msgs;
  }

  /// Drains every inbound cell of `dst` (in source-shard order) into the
  /// kernel's queue. The canonical event order makes the drain order
  /// irrelevant, but keeping it fixed makes runs reproducible to the byte.
  void drain_into(int dst, Kernel& kernel) {
    for (int src = 0; src < shards_; ++src) {
      std::vector<Msg>& box = cell(src, dst);
      for (const Msg& msg : box) {
        if (msg.is_ack) {
          kernel.enqueue_remote_ack(msg.time, msg.channel, msg.count);
        } else {
          kernel.enqueue_remote_deliver(msg.time, msg.channel, msg.packet);
        }
      }
      box.clear();
    }
  }

 private:
  struct alignas(64) Cell {
    std::vector<Msg> msgs;
  };
  int shards_;
  std::vector<Cell> cells_;
};

class ShardRouter : public CrossRouter {
 public:
  ShardRouter(Mailboxes& mail, int from) : mail_(mail), from_(from) {}

  void post_deliver(int to_shard, double time, std::int32_t channel,
                    Packet packet) override {
    mail_.cell(from_, to_shard)
        .push_back(Msg{time, channel, 0, packet, false});
  }
  void post_ack(int to_shard, double time, std::int32_t channel,
                std::int32_t count) override {
    mail_.cell(from_, to_shard)
        .push_back(Msg{time, channel, count, Packet{}, true});
  }

 private:
  Mailboxes& mail_;
  const int from_;
};

/// Cache-line-isolated per-shard reduction slot. Written by its shard
/// before a barrier, read by every shard after it.
struct alignas(64) Slot {
  double next_time = kInfiniteTime;
  double ack_bound = kInfiniteTime;
  std::uint32_t acks_posted = 0;
};

struct RoundState {
  SpinBarrier barrier;
  Mailboxes mail;
  std::vector<Slot> slots;
  double lookahead_ns;
  double max_time_ns;
  std::atomic<bool> capped{false};

  RoundState(int shards, double lookahead, double max_time)
      : barrier(shards),
        mail(shards),
        slots(shards),
        lookahead_ns(lookahead),
        max_time_ns(max_time) {}
};

/// Credit-mode round loop: no ack-risk bound, no same-timestamp fixpoint.
/// Every round is a window round with H = T + lookahead — the credit
/// horizon guarantees no shard needs a remote ack inside the window
/// (exhausted credits queue in the outbox instead of blocking the round) —
/// and the acks consumed during the round flush as one batch per channel at
/// the window boundary. The degenerate H == T case (a zero-latency cut
/// channel) processes single timestamps but still batches acks, so time
/// never runs backwards: an ack consumed at T is processed by the source at
/// T in the next round.
void shard_main_credit(int me, int shards, Kernel& kernel, RoundState& state) {
  for (;;) {
    state.mail.drain_into(me, kernel);
    state.slots[me].next_time = kernel.next_time();
    state.barrier.arrive_and_wait();

    double t = kInfiniteTime;
    for (int s = 0; s < shards; ++s) {
      t = std::min(t, state.slots[s].next_time);
    }
    if (t == kInfiniteTime) break;  // global quiescence (batches are
                                    // flushed in the round they fill, so
                                    // none can be outstanding here)
    if (t > state.max_time_ns) {
      if (me == 0) state.capped.store(true, std::memory_order_relaxed);
      break;
    }

    double horizon = t + state.lookahead_ns;
    if (horizon > t) {
      kernel.process_events(horizon, /*inclusive=*/false, state.max_time_ns);
      kernel.flush_ack_batches(horizon);
    } else {
      kernel.process_events(t, /*inclusive=*/true, state.max_time_ns);
      kernel.flush_ack_batches(t);
    }
    state.barrier.arrive_and_wait();
  }
}

void shard_main(int me, int shards, Kernel& kernel, RoundState& state) {
  for (;;) {
    state.mail.drain_into(me, kernel);
    state.slots[me].next_time = kernel.next_time();
    state.slots[me].ack_bound = kernel.ack_risk_bound();
    state.barrier.arrive_and_wait();

    double t = kInfiniteTime;
    double bound = kInfiniteTime;
    for (int s = 0; s < shards; ++s) {
      t = std::min(t, state.slots[s].next_time);
      bound = std::min(bound, state.slots[s].ack_bound);
    }
    if (t == kInfiniteTime) break;  // global quiescence
    if (t > state.max_time_ns) {
      // Same t on every thread: all conclude the cutoff together.
      if (me == 0) state.capped.store(true, std::memory_order_relaxed);
      break;
    }

    double horizon = std::min(t + state.lookahead_ns, bound);
    if (horizon > t) {
      // Window round: no remote ack can land before `horizon`, and every
      // cross-shard delivery posted now lands at ≥ t + lookahead.
      kernel.process_events(horizon, /*inclusive=*/false, state.max_time_ns);
      state.barrier.arrive_and_wait();
      continue;
    }

    // Timestep round: a cross-shard channel could be acknowledged at `t`.
    // Process exactly this timestamp, then iterate same-time ack exchange
    // to a fixpoint so the source sees the ack at the same timestamp the
    // single-queue engine would.
    kernel.process_events(t, /*inclusive=*/true, state.max_time_ns);
    state.slots[me].acks_posted = kernel.take_acks_posted();
    state.barrier.arrive_and_wait();
    for (;;) {
      std::uint32_t acks = 0;
      for (int s = 0; s < shards; ++s) acks += state.slots[s].acks_posted;
      if (acks == 0) break;
      state.mail.drain_into(me, kernel);
      state.barrier.arrive_and_wait();  // drains before the next posts
      kernel.process_events(t, /*inclusive=*/true, state.max_time_ns);
      state.slots[me].acks_posted = kernel.take_acks_posted();
      state.barrier.arrive_and_wait();
    }
  }
}

}  // namespace

SimResult run_sharded(SimGraph& graph, const SimOptions& options,
                      support::DiagnosticEngine& diags) {
  PartitionStats stats = partition_graph(
      graph, options.shards, options.auto_partition,
      options.component_weights.empty() ? nullptr
                                        : &options.component_weights);

  // Credit negotiation (AckMode::kCredit): every cut channel gets a
  // window-sized send budget; the register protocol stays in place for
  // shard-local channels, so a single-shard run is the exact engine either
  // way.
  const bool credit = options.ack_mode == AckMode::kCredit &&
                      graph.shard_count > 1 && stats.cross_channels > 0;
  if (credit) {
    std::int32_t window = std::max(1, options.credit_window);
    for (Channel& c : graph.channels) {
      if (c.cross_shard()) {
        c.credit = true;
        c.credits = window;
      }
    }
  }

  if (graph.shard_count <= 1) {
    Kernel kernel(graph, options, diags, /*shard=*/0, /*router=*/nullptr);
    kernel.seed();
    kernel.process_events(kInfiniteTime, /*inclusive=*/false,
                          options.max_time_ns);
    double end_time =
        kernel.capped() ? options.max_time_ns : kernel.last_event_time();
    std::vector<Kernel*> kernels{&kernel};
    return merge_results(graph, kernels, end_time, diags);
  }

  const int shards = graph.shard_count;
  RoundState state(shards, stats.min_cross_latency_ns, options.max_time_ns);

  std::vector<std::unique_ptr<ShardRouter>> routers;
  std::vector<std::unique_ptr<Kernel>> kernels;
  routers.reserve(shards);
  kernels.reserve(shards);
  for (int s = 0; s < shards; ++s) {
    routers.push_back(std::make_unique<ShardRouter>(state.mail, s));
    kernels.push_back(
        std::make_unique<Kernel>(graph, options, diags, s, routers[s].get()));
  }
  // Seed single-threaded (behaviour on_start may post cross-shard traffic;
  // the mailboxes are drained at the first round).
  for (auto& kernel : kernels) kernel->seed();

  std::vector<std::thread> threads;
  threads.reserve(shards);
  for (int s = 0; s < shards; ++s) {
    threads.emplace_back(credit ? shard_main_credit : shard_main, s, shards,
                         std::ref(*kernels[s]), std::ref(state));
  }
  for (std::thread& thread : threads) thread.join();

  double end_time = 0.0;
  if (state.capped.load(std::memory_order_relaxed)) {
    end_time = options.max_time_ns;
  } else {
    for (const auto& kernel : kernels) {
      end_time = std::max(end_time, kernel->last_event_time());
    }
  }
  std::vector<Kernel*> kernel_ptrs;
  kernel_ptrs.reserve(shards);
  for (auto& kernel : kernels) kernel_ptrs.push_back(kernel.get());
  return merge_results(graph, kernel_ptrs, end_time, diags);
}

}  // namespace tydi::sim::shard
