#include "src/sim/shard/partition.hpp"

#include <algorithm>

namespace tydi::sim::shard {

namespace {

/// Estimated activity weight: a component with more connected ports sees
/// proportionally more deliver/ack traffic.
double component_weight(const Component& comp) {
  double connected = 0;
  for (std::int32_t ch : comp.in_channel) connected += ch >= 0 ? 1 : 0;
  for (std::int32_t ch : comp.out_channel) connected += ch >= 0 ? 1 : 0;
  return 1.0 + connected;
}

/// BFS order over the channel adjacency, seeded by the components fed from
/// top inputs (in channel index order), then any unreached component in
/// index order. Deterministic: neighbours are visited in channel order.
std::vector<std::int32_t> bfs_order(const SimGraph& graph) {
  std::size_t n = graph.components.size();
  std::vector<std::vector<std::int32_t>> adjacency(n);
  for (const Channel& c : graph.channels) {
    if (c.src.component >= 0 && c.dst.component >= 0) {
      adjacency[c.src.component].push_back(c.dst.component);
      adjacency[c.dst.component].push_back(c.src.component);
    }
  }
  std::vector<std::int32_t> order;
  order.reserve(n);
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<std::int32_t> frontier;
  auto visit = [&](std::int32_t comp) {
    if (comp < 0 || seen[comp]) return;
    seen[comp] = 1;
    order.push_back(comp);
    frontier.push_back(comp);
  };
  auto drain = [&] {
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      for (std::int32_t next : adjacency[frontier[head]]) visit(next);
    }
    frontier.clear();
  };
  // Expand each seed's reachable subgraph before seeding the next, so
  // independent subgraphs (e.g. parallel pipelines) stay contiguous in the
  // order and a block split never cuts across them needlessly.
  for (const Channel& c : graph.channels) {
    if (c.src.component < 0) {
      visit(c.dst.component);
      drain();
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!seen[i]) {
      visit(static_cast<std::int32_t>(i));
      drain();
    }
  }
  return order;
}

}  // namespace

PartitionStats partition_graph(SimGraph& graph, int shards,
                               bool auto_partition,
                               const std::vector<double>* activity) {
  PartitionStats stats;
  stats.requested_shards = shards;
  std::size_t n = graph.components.size();
  int k = std::max(1, std::min<int>(shards, static_cast<int>(n)));
  graph.component_shard.assign(n, 0);
  const bool weighted = activity != nullptr && activity->size() == n;
  stats.profile_weighted = weighted && k > 1;
  auto weight_of = [&](std::size_t comp) {
    if (weighted && (*activity)[comp] > 0.0) return (*activity)[comp];
    return component_weight(graph.components[comp]);
  };

  if (k > 1) {
    std::vector<std::int32_t> order;
    if (auto_partition) {
      order = bfs_order(graph);
    } else {
      order.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        order[i] = static_cast<std::int32_t>(i);
      }
    }
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += weight_of(i);
    int block = 0;
    double cum = 0.0;
    for (std::size_t j = 0; j < order.size(); ++j) {
      graph.component_shard[order[j]] = block;
      cum += weight_of(static_cast<std::size_t>(order[j]));
      std::size_t remaining = order.size() - j - 1;
      if (block < k - 1 &&
          (cum * k >= total * (block + 1) ||
           remaining == static_cast<std::size_t>(k - 1 - block))) {
        ++block;
      }
    }
  }

  // Stamp channel ownership: the source side owns the register/outbox;
  // environment endpoints follow the opposite (component) side so boundary
  // channels are never cut.
  for (Channel& c : graph.channels) {
    std::int32_t src_shard =
        c.src.component >= 0 ? graph.component_shard[c.src.component]
        : c.dst.component >= 0 ? graph.component_shard[c.dst.component]
                               : 0;
    std::int32_t dst_shard =
        c.dst.component >= 0 ? graph.component_shard[c.dst.component]
                             : src_shard;
    c.src_shard = src_shard;
    c.dst_shard = dst_shard;
    if (c.cross_shard()) {
      stats.cross_channels += 1;
      stats.min_cross_latency_ns =
          std::min(stats.min_cross_latency_ns, c.latency_ns);
    }
  }

  stats.shard_count = k;
  stats.components_per_shard.assign(k, 0);
  for (std::int32_t s : graph.component_shard) {
    stats.components_per_shard[s] += 1;
  }
  graph.shard_count = k;
  return stats;
}

bool validate_partition(const SimGraph& graph, const PartitionStats& stats,
                        std::vector<std::string>& errors) {
  std::size_t before = errors.size();
  if (graph.component_shard.size() != graph.components.size()) {
    errors.push_back("component_shard size mismatch");
    return false;
  }
  if (graph.shard_count != stats.shard_count) {
    errors.push_back("graph.shard_count disagrees with stats");
  }
  std::vector<std::size_t> per_shard(stats.shard_count, 0);
  for (std::size_t i = 0; i < graph.component_shard.size(); ++i) {
    std::int32_t s = graph.component_shard[i];
    if (s < 0 || s >= stats.shard_count) {
      errors.push_back("component " + graph.components[i].path +
                       " assigned to out-of-range shard " +
                       std::to_string(s));
      continue;
    }
    per_shard[s] += 1;
  }
  for (int s = 0; s < stats.shard_count; ++s) {
    if (per_shard[s] == 0) {
      errors.push_back("shard " + std::to_string(s) + " owns no components");
    }
    if (s < static_cast<int>(stats.components_per_shard.size()) &&
        per_shard[s] != stats.components_per_shard[s]) {
      errors.push_back("shard " + std::to_string(s) +
                       " component count disagrees with stats");
    }
  }
  std::size_t cross = 0;
  double min_latency = kInfiniteTime;
  for (const Channel& c : graph.channels) {
    std::int32_t expect_src =
        c.src.component >= 0 ? graph.component_shard[c.src.component]
        : c.dst.component >= 0 ? graph.component_shard[c.dst.component]
                               : 0;
    std::int32_t expect_dst =
        c.dst.component >= 0 ? graph.component_shard[c.dst.component]
                             : expect_src;
    if (c.src_shard != expect_src || c.dst_shard != expect_dst) {
      errors.push_back("channel ownership inconsistent with component "
                       "assignment: " +
                       graph.channel_display_name(c));
    }
    if ((c.src.component < 0 || c.dst.component < 0) && c.cross_shard()) {
      errors.push_back("boundary channel cut: " +
                       graph.channel_display_name(c));
    }
    if (c.cross_shard()) {
      cross += 1;
      min_latency = std::min(min_latency, c.latency_ns);
    }
  }
  if (cross != stats.cross_channels) {
    errors.push_back("cross-channel count disagrees with stats");
  }
  if (cross > 0 && min_latency != stats.min_cross_latency_ns) {
    errors.push_back("min cross latency disagrees with stats");
  }
  return errors.size() == before;
}

}  // namespace tydi::sim::shard
