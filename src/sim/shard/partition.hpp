// Deterministic spatial partitioner for the sharded simulation engine.
//
// Splits the flattened SimGraph into K shards: every component lands in
// exactly one shard; channels between shards become cross-shard channels
// whose minimum latency is the conservative lookahead of the time-window
// protocol (src/sim/shard/runtime.hpp). Top-boundary channels are never
// cut — they are owned by the shard of their non-environment endpoint.
//
// Two strategies, both deterministic:
//  - auto (default): BFS order from the top-input-fed components over the
//    channel adjacency, split into K contiguous blocks balanced by
//    estimated activity (port degree). BFS keeps pipeline neighbourhoods
//    together, so cuts land on few channels.
//  - naive: contiguous component-index blocks (stresses the cross-shard
//    protocol in tests: cuts land wherever the flatten order put them).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/sim/engine.hpp"

namespace tydi::sim::shard {

struct PartitionStats {
  int requested_shards = 1;
  /// Effective shard count (≤ requested; clamped to the component count).
  int shard_count = 1;
  std::size_t cross_channels = 0;
  /// Conservative lookahead: min latency over cross-shard channels
  /// (kInfiniteTime when nothing is cut).
  double min_cross_latency_ns = kInfiniteTime;
  std::vector<std::size_t> components_per_shard;
  /// True when measured activity weights (not the degree heuristic)
  /// balanced the blocks.
  bool profile_weighted = false;
};

/// Assigns `graph.component_shard`, stamps every channel's src/dst shard,
/// and sets `graph.shard_count`. Deterministic for a given graph + options.
///
/// `activity`, when non-null and indexed like `graph.components`, supplies
/// measured per-component event counts (a profiling pre-run or a prior
/// SimResult::component_events) that replace the degree heuristic for
/// block balancing — heterogeneous designs (TPC-H) split far closer to
/// equal work. Components whose measured weight is zero fall back to the
/// degree estimate so idle-but-connected components still count.
PartitionStats partition_graph(SimGraph& graph, int shards,
                               bool auto_partition,
                               const std::vector<double>* activity = nullptr);

/// Checks the partition invariants (every component in exactly one shard in
/// range, channel ownership consistent with component assignment, boundary
/// channels uncut, stats consistent). Appends one message per violation.
[[nodiscard]] bool validate_partition(const SimGraph& graph,
                                      const PartitionStats& stats,
                                      std::vector<std::string>& errors);

}  // namespace tydi::sim::shard
