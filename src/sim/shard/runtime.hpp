// Sharded simulation runtime: K kernels on K threads under a conservative
// time-window barrier.
//
// Protocol (see src/sim/shard/README.md for the full argument):
//  - All threads advance in lockstep *rounds*. A round starts by draining
//    the shard mailboxes and reducing the global next-event time T and the
//    global ack-risk bound over a barrier.
//  - When no cross-shard channel could be acknowledged inside the window
//    (bound > T), every shard freely processes events in [T, H) with
//    H = min(T + W, bound), W = the partition's minimum cross-shard channel
//    latency. Any cross-shard delivery posted inside the window lands at
//    ≥ T + W, i.e. in a later round — no shard can affect another within
//    the window.
//  - Otherwise the round degrades to a single timestamp: shards process
//    events at exactly T, exchange same-time acknowledgements, and iterate
//    to a fixpoint before advancing. This preserves the single-queue
//    engine's synchronous ack semantics (a sink's ack frees the source
//    register *at the same timestamp*), which has zero lookahead and is
//    exactly the part a pure window scheme cannot cut.
//
// Determinism: every control decision (T, H, fixpoint continuation) derives
// from barrier-reduced values all threads compute identically, and kernels
// pop events in the canonical interleaving-independent order, so the run is
// reproducible and byte-identical to the single-queue engine.
#pragma once

#include "src/sim/engine.hpp"
#include "src/support/diagnostic.hpp"

namespace tydi::sim::shard {

/// Partitions `graph` per `options` (shards, auto_partition), runs the
/// sharded simulation, and merges the per-shard buffers into a SimResult
/// byte-identical to the single-queue engine's. Falls back to the inline
/// single-kernel loop when the effective shard count is 1.
[[nodiscard]] SimResult run_sharded(SimGraph& graph, const SimOptions& options,
                                    support::DiagnosticEngine& diags);

}  // namespace tydi::sim::shard
