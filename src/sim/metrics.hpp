// Analysis reports over simulation results (Sec. V-B): bottleneck ranking,
// channel utilization, and the state-transition table.
#pragma once

#include <string>
#include <vector>

#include "src/sim/engine.hpp"

namespace tydi::sim {

struct ChannelUtilization {
  std::string name;
  std::size_t packets = 0;
  double blocked_ns = 0.0;
  /// Fraction of the active window spent delivering packets (0..1).
  double utilization = 0.0;
};

/// Channels ranked by blocked time, worst first ("investigate the output
/// ports with the longest blockage to find the bottleneck component").
[[nodiscard]] std::vector<ChannelStats> rank_bottlenecks(
    const SimResult& result);

/// Per-channel utilization over the simulated window.
[[nodiscard]] std::vector<ChannelUtilization> channel_utilization(
    const SimResult& result, double clock_period_ns);

/// Plain-text bottleneck report (top `limit` channels).
[[nodiscard]] std::string render_bottleneck_report(const SimResult& result,
                                                   std::size_t limit = 10);

/// Plain-text state-transition table grouped by component.
[[nodiscard]] std::string render_state_table(const SimResult& result);

/// Exact (bit-for-bit, including double timestamps) equality of two
/// simulation results. The sharded engine's determinism contract: results
/// must be identical for any shard count. When `why` is non-null the first
/// difference is described there.
[[nodiscard]] bool results_identical(const SimResult& a, const SimResult& b,
                                     std::string* why = nullptr);

/// The credit-mode contract (SimOptions::ack_mode == AckMode::kCredit):
/// batched acknowledgements shift ack/backpressure timestamps by up to one
/// credit window, so timing-carrying fields (blocked_ns, event times,
/// events_processed) legitimately differ from the exact engine — but the
/// *functional* outcome must not. Checks, ignoring every timestamp:
///  - deadlock flag;
///  - per-channel delivered packet counts (by channel name);
///  - per-channel traced (value, last) sequences, when both traces exist;
///  - per-port top output (value, last) sequences;
///  - per-component ordered state-transition sequences (variable/from/to).
[[nodiscard]] bool results_functionally_equivalent(const SimResult& a,
                                                   const SimResult& b,
                                                   std::string* why = nullptr);

}  // namespace tydi::sim
