// Event-driven simulator for elaborated Tydi designs (Sec. V).
//
// The hierarchy is flattened: external implementations become leaf
// *components* and connection chains collapse into *channels* (one-deep
// handshake registers). Components carry behaviour — either a built-in C++
// model keyed by the stdlib template family (mirroring the hard-coded RTL
// generator) or an interpreted `sim { ... }` block from the source.
//
// Semantics:
//  - send(port, packet): if the channel register is free the packet is
//    delivered to the sink after the channel latency (one clock period of
//    the port's clock domain); otherwise it queues in the port outbox and
//    the waiting time is accounted as *blocked* time (the paper's
//    "waiting time of all output ports (blocked by handshaking)").
//  - the sink's behaviour decides when to ack; ack frees the register and
//    pulls the next packet from the source outbox.
//  - bottleneck analysis = channels ranked by blocked time (Sec. V-B);
//  - deadlock detection = wait-for cycle search when the event queue runs
//    dry while packets are still in flight.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "src/elab/design.hpp"
#include "src/support/diagnostic.hpp"

namespace tydi::sim {

/// One data packet travelling a channel. `value` is the abstract payload
/// (the simulator models timing, not bit-level data); `last` marks the end
/// of a dimension-1 sequence for aggregating components.
struct Packet {
  std::int64_t value = 0;
  bool last = false;
};

/// Stimulus for one top-level input port.
struct Stimulus {
  std::string port;
  /// (injection time ns, packet). Packets enter the port's channel in order;
  /// later packets queue behind un-acked earlier ones.
  std::vector<std::pair<double, Packet>> packets;
};

struct SimOptions {
  double max_time_ns = 1.0e6;
  /// Clock-domain name -> period ns ("the mapping from the clock-domain to
  /// physical frequency", Sec. V-B). Unlisted domains use default_period_ns.
  std::map<std::string, double> clock_period_ns;
  double default_period_ns = 10.0;
  std::vector<Stimulus> stimuli;
  /// Per-component model parameters keyed by flattened instance path, e.g.
  /// {"pu_inst_3", {{"latency_cycles", 8}}}.
  std::map<std::string, std::map<std::string, double>> model_params;
  /// Record the full packet trace (needed for testbench generation).
  bool record_trace = true;
};

struct ChannelStats {
  std::string name;          ///< "srcpath.port -> dstpath.port"
  std::size_t packets = 0;   ///< delivered packets
  double blocked_ns = 0.0;   ///< total outbox waiting time
  double first_delivery_ns = 0.0;
  double last_delivery_ns = 0.0;
};

/// One traced transfer (for testbenches and debugging).
struct TraceEvent {
  double time_ns = 0.0;
  std::string channel;  ///< same format as ChannelStats::name
  Packet packet;
  bool is_top_input = false;
  bool is_top_output = false;
  std::string top_port;  ///< set for top-level boundary transfers
};

/// One state-variable transition of a sim-block component (Sec. V-B "record
/// the state-transition table of each implementation").
struct StateTransition {
  double time_ns = 0.0;
  std::string component;
  std::string variable;
  std::string from;
  std::string to;
};

struct SimResult {
  double end_time_ns = 0.0;
  bool deadlock = false;
  /// Non-empty on deadlock when a wait-for cycle was found: the component
  /// paths forming the cycle.
  std::vector<std::string> deadlock_cycle;
  /// Components/channels still blocked at stall time (deadlock diagnosis).
  std::vector<std::string> blocked_report;
  std::vector<ChannelStats> channels;
  /// Output packets observed at each top-level output port.
  std::map<std::string, std::vector<std::pair<double, Packet>>> top_outputs;
  std::vector<TraceEvent> trace;
  std::vector<StateTransition> state_transitions;

  /// Channel with the largest blocked time (the streaming bottleneck), or
  /// nullptr if nothing blocked.
  [[nodiscard]] const ChannelStats* bottleneck() const;
  /// Packets per nanosecond observed on a top output port.
  [[nodiscard]] double throughput(const std::string& top_port) const;
  [[nodiscard]] std::string summary() const;
};

class Behavior;  // behavior.hpp

/// Flattened leaf component.
struct Component {
  std::string path;            ///< dotted instance path from the top
  const elab::Impl* impl = nullptr;
  std::unique_ptr<Behavior> behavior;
  bool busy = false;
  /// Packets delivered but not yet consumed by the behaviour, per port.
  std::map<std::string, std::deque<Packet>> inbox;

  // Out-of-line special members: Behavior is incomplete here.
  Component();
  Component(Component&&) noexcept;
  Component& operator=(Component&&) noexcept;
  ~Component();
};

struct ChannelEndpoint {
  int component = -1;  ///< -1 = environment (top-level boundary)
  std::string port;
};

struct Channel {
  ChannelEndpoint src;
  ChannelEndpoint dst;
  double latency_ns = 10.0;
  bool occupied = false;
  Packet in_flight;
  std::deque<std::pair<double, Packet>> outbox;  ///< (enqueue time, packet)
  ChannelStats stats;
};

class Engine {
 public:
  Engine(const elab::Design& design, support::DiagnosticEngine& diags);

  /// Flattens and simulates the design's top implementation.
  [[nodiscard]] SimResult run(const SimOptions& options);

  // --- API for Behavior models -------------------------------------------

  [[nodiscard]] double now() const { return now_; }
  void schedule(double delay_ns, std::function<void()> fn);
  /// Sends on an output port of `component`. Queues when the channel is
  /// occupied.
  void send(int component, const std::string& port, Packet packet);
  /// Acknowledges the packet pending on an input port of `component`.
  void ack(int component, const std::string& port);
  /// True if the channel out of (component, port) can accept immediately.
  [[nodiscard]] bool can_send(int component, const std::string& port) const;
  [[nodiscard]] Component& component(int index) { return components_[index]; }
  [[nodiscard]] const elab::Design& design() const { return design_; }
  [[nodiscard]] double clock_period(int component) const;
  void record_state_transition(int component, const std::string& variable,
                               const std::string& from, const std::string& to);
  /// Re-evaluates a component's firing conditions (called by behaviours
  /// after finishing a handler).
  void poke(int component);

 private:
  const elab::Design& design_;
  support::DiagnosticEngine& diags_;
  const SimOptions* options_ = nullptr;
  double now_ = 0.0;
  std::uint64_t sequence_ = 0;
  bool trace_enabled_ = true;

  struct Event {
    double time;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;

  std::vector<Component> components_;
  std::vector<Channel> channels_;
  /// (component, port) -> channel index, for both src and dst sides.
  std::map<std::pair<int, std::string>, std::size_t> channel_by_src_;
  std::map<std::pair<int, std::string>, std::size_t> channel_by_dst_;

  SimResult result_;

  void flatten(const SimOptions& options);
  void flatten_impl(const elab::Impl& impl, const std::string& path,
                    std::vector<std::pair<std::string, std::string>>& links);
  void deliver(std::size_t channel_index);
  void start_channel_transfer(std::size_t channel_index, Packet packet);
  void inject_stimuli(const SimOptions& options);
  void detect_deadlock();
  [[nodiscard]] std::string channel_name(const Channel& c) const;
  [[nodiscard]] std::string endpoint_name(const ChannelEndpoint& ep) const;
};

}  // namespace tydi::sim
