// Event-driven simulator for elaborated Tydi designs (Sec. V).
//
// The hierarchy is flattened: external implementations become leaf
// *components* and connection chains collapse into *channels* (one-deep
// handshake registers). Components carry behaviour — either a built-in C++
// model keyed by the stdlib template family (mirroring the hard-coded RTL
// generator) or an interpreted `sim { ... }` block from the source.
//
// Semantics:
//  - send(port, packet): if the channel register is free the packet is
//    delivered to the sink after the channel latency (one clock period of
//    the port's clock domain); otherwise it queues in the port outbox and
//    the waiting time is accounted as *blocked* time (the paper's
//    "waiting time of all output ports (blocked by handshaking)").
//  - the sink's behaviour decides when to ack; ack frees the register and
//    pulls the next packet from the source outbox.
//  - bottleneck analysis = channels ranked by blocked time (Sec. V-B);
//  - deadlock detection = wait-for cycle search when the event queue runs
//    dry while packets are still in flight.
//
// Performance model (see src/sim/README.md): all names are resolved to
// dense integer IDs during flatten — components by index, ports by their
// position in the owning streamlet's port list, channels by index. The
// steady-state send/deliver/ack path is pure integer indexing: no string
// hashing, no string-keyed maps, and no per-event heap allocation (events
// are a POD tagged union dispatched by a switch). Channel/endpoint name
// strings exist only for diagnostics and are materialized once, after the
// event loop finishes.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/elab/design.hpp"
#include "src/support/diagnostic.hpp"
#include "src/support/intern.hpp"

namespace tydi::sim {

using support::Symbol;

/// One data packet travelling a channel. `value` is the abstract payload
/// (the simulator models timing, not bit-level data); `last` marks the end
/// of a dimension-1 sequence for aggregating components.
struct Packet {
  std::int64_t value = 0;
  bool last = false;
};

/// Stimulus for one top-level input port.
struct Stimulus {
  std::string port;
  /// (injection time ns, packet). Packets enter the port's channel in order;
  /// later packets queue behind un-acked earlier ones.
  std::vector<std::pair<double, Packet>> packets;
};

struct SimOptions {
  double max_time_ns = 1.0e6;
  /// Clock-domain name -> period ns ("the mapping from the clock-domain to
  /// physical frequency", Sec. V-B). Unlisted domains use default_period_ns.
  std::map<std::string, double> clock_period_ns;
  double default_period_ns = 10.0;
  std::vector<Stimulus> stimuli;
  /// Per-component model parameters keyed by flattened instance path, e.g.
  /// {"pu_inst_3", {{"latency_cycles", 8}}}.
  std::map<std::string, std::map<std::string, double>> model_params;
  /// Record the full packet trace (needed for testbench generation).
  bool record_trace = true;
};

struct ChannelStats {
  std::string name;          ///< "srcpath.port -> dstpath.port"
  std::size_t packets = 0;   ///< delivered packets
  double blocked_ns = 0.0;   ///< total outbox waiting time
  double first_delivery_ns = 0.0;
  double last_delivery_ns = 0.0;
};

/// One traced transfer (for testbenches and debugging).
struct TraceEvent {
  double time_ns = 0.0;
  std::string channel;  ///< same format as ChannelStats::name
  /// Index into SimResult::channels (set during the run; the `channel`
  /// string is derived from it after the event loop).
  std::int32_t channel_index = -1;
  Packet packet;
  bool is_top_input = false;
  bool is_top_output = false;
  std::string top_port;  ///< set for top-level boundary transfers
};

/// One state-variable transition of a sim-block component (Sec. V-B "record
/// the state-transition table of each implementation").
struct StateTransition {
  double time_ns = 0.0;
  std::string component;
  std::string variable;
  std::string from;
  std::string to;
};

struct SimResult {
  double end_time_ns = 0.0;
  /// Events popped from the scheduler queue (simulation work metric).
  std::uint64_t events_processed = 0;
  bool deadlock = false;
  /// Non-empty on deadlock when a wait-for cycle was found: the component
  /// paths forming the cycle.
  std::vector<std::string> deadlock_cycle;
  /// Components/channels still blocked at stall time (deadlock diagnosis).
  std::vector<std::string> blocked_report;
  std::vector<ChannelStats> channels;
  /// Output packets observed at each top-level output port.
  std::map<std::string, std::vector<std::pair<double, Packet>>> top_outputs;
  std::vector<TraceEvent> trace;
  std::vector<StateTransition> state_transitions;

  /// Channel with the largest blocked time (the streaming bottleneck), or
  /// nullptr if nothing blocked. Ties break towards the lexicographically
  /// smaller channel name so the answer is deterministic.
  [[nodiscard]] const ChannelStats* bottleneck() const;
  /// Packets per nanosecond observed on a top output port.
  [[nodiscard]] double throughput(const std::string& top_port) const;
  [[nodiscard]] std::string summary() const;
};

class Behavior;  // behavior.hpp

/// Flattened leaf component. Ports are addressed by their index in the
/// owning streamlet's port list.
struct Component {
  std::string path;            ///< dotted instance path from the top
  const elab::Impl* impl = nullptr;
  const elab::Streamlet* streamlet = nullptr;
  std::unique_ptr<Behavior> behavior;
  double clock_period_ns = 10.0;  ///< resolved from the clock-domain map
  /// Packets delivered but not yet consumed by the behaviour, per port
  /// index (entries for output ports stay empty).
  std::vector<std::deque<Packet>> inbox;
  /// Port index -> channel index this port feeds (-1 = unconnected).
  std::vector<std::int32_t> out_channel;
  /// Port index -> channel index feeding this port (-1 = unconnected).
  std::vector<std::int32_t> in_channel;

  // Out-of-line special members: Behavior is incomplete here.
  Component();
  Component(Component&&) noexcept;
  Component& operator=(Component&&) noexcept;
  ~Component();
};

/// (component, port-index) pair. component == -1 is the environment (top
/// boundary), in which case `port` indexes the top streamlet's ports.
struct ChannelEndpoint {
  std::int32_t component = -1;
  std::int32_t port = -1;
};

struct Channel {
  ChannelEndpoint src;
  ChannelEndpoint dst;
  double latency_ns = 10.0;
  bool occupied = false;
  Packet in_flight;
  std::deque<std::pair<double, Packet>> outbox;  ///< (enqueue time, packet)
  ChannelStats stats;
};

class Engine {
 public:
  Engine(const elab::Design& design, support::DiagnosticEngine& diags);

  /// Flattens and simulates the design's top implementation.
  [[nodiscard]] SimResult run(const SimOptions& options);

  // --- API for Behavior models -------------------------------------------
  // Ports are addressed by index into the component's streamlet port list;
  // negative indices are tolerated (warn-and-drop) so behaviours built from
  // unresolvable names degrade gracefully.

  [[nodiscard]] double now() const { return now_; }
  /// Schedules Behavior::on_timer(self=component, token) after `delay_ns`.
  void schedule_timer(double delay_ns, int component, std::int32_t token);
  /// Schedules a poke (re-evaluation of firing conditions) for `component`.
  void schedule_poke(double delay_ns, int component);
  /// Sends on an output port of `component`. Queues when the channel is
  /// occupied.
  void send(int component, int port, Packet packet);
  /// Acknowledges the packet pending on an input port of `component`.
  void ack(int component, int port);
  /// True if the channel out of (component, port) can accept immediately.
  [[nodiscard]] bool can_send(int component, int port) const;
  [[nodiscard]] Component& component(int index) { return components_[index]; }
  [[nodiscard]] const elab::Design& design() const { return design_; }
  [[nodiscard]] double clock_period(int component) const {
    return component >= 0 ? components_[component].clock_period_ns
                          : default_period_ns_;
  }
  /// `from`/`to` are interned state values (state alphabets are small, so
  /// recording a transition is three integer stores, no string copies).
  void record_state_transition(int component, Symbol variable, Symbol from,
                               Symbol to);
  /// Re-evaluates a component's firing conditions (called by behaviours
  /// after finishing a handler).
  void poke(int component);

  /// Human-readable "path.port" for diagnostics (not on the hot path).
  [[nodiscard]] std::string endpoint_name(const ChannelEndpoint& ep) const;

 private:
  // POD scheduler event: kind + two integer operands + packet payload,
  // dispatched by a switch. No closures, no allocation per event.
  enum class EventKind : std::uint8_t {
    kDeliver,   ///< a = channel index
    kTimer,     ///< a = component, b = behaviour-defined token
    kPoke,      ///< a = component
    kStimulus,  ///< a = stimulus cursor index
  };
  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;  ///< FIFO tie-break at equal times
    std::int32_t a = -1;
    std::int32_t b = -1;
    EventKind kind = EventKind::kDeliver;
    bool operator>(const Event& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  // Deduplicated per-packet warnings: each (kind, component, port/channel)
  // site warns once and is counted; totals are reported after the run.
  enum class WarnSite : std::uint8_t {
    kSendUnconnected,
    kAckUnconnected,
    kAckEmptyChannel,
  };

  const elab::Design& design_;
  support::DiagnosticEngine& diags_;
  const SimOptions* options_ = nullptr;
  const elab::Streamlet* top_streamlet_ = nullptr;
  double now_ = 0.0;
  double default_period_ns_ = 10.0;
  std::uint64_t sequence_ = 0;
  bool trace_enabled_ = true;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;

  std::vector<Component> components_;
  std::vector<Channel> channels_;
  /// Top streamlet port index -> channel driven by that (input) port.
  std::vector<std::int32_t> top_src_channel_;
  /// Packets observed per top streamlet port index (folded into
  /// SimResult::top_outputs after the run).
  std::vector<std::vector<std::pair<double, Packet>>> top_out_packets_;

  /// (time, component, variable, from, to); paths/names materialize later.
  struct PendingTransition {
    double time_ns;
    std::int32_t component;
    Symbol variable;
    Symbol from;
    Symbol to;
  };
  std::vector<PendingTransition> pending_transitions_;

  std::unordered_map<std::uint64_t, std::uint64_t> warn_counts_;

  /// Lazy stimulus injection: only the next packet of each stimulus stream
  /// lives in the event queue (keeps the heap small and cache-resident
  /// instead of pre-loading every future packet).
  struct StimulusCursor {
    std::int32_t channel = -1;
    const Stimulus* stimulus = nullptr;
    std::size_t next = 0;
  };
  std::vector<StimulusCursor> stimulus_cursors_;

  SimResult result_;

  void push_event(double delay_ns, EventKind kind, std::int32_t a,
                  std::int32_t b);
  void dispatch(const Event& ev);
  void flatten(const SimOptions& options);
  void deliver(std::size_t channel_index);
  void start_channel_transfer(std::size_t channel_index, Packet packet);
  /// Starts the next outbox packet if the register is free, charging the
  /// waiting time to the channel's blocked counter.
  void drain_outbox(std::size_t channel_index);
  void send_on_channel(std::size_t channel_index, Packet packet);
  void notify_output_acked(ChannelEndpoint src);
  void inject_stimuli(const SimOptions& options);
  void detect_deadlock();
  void finalize_result();
  /// True exactly on the first hit of a warning site; every call counts, so
  /// repeat totals can be summarized after the run without building message
  /// strings on the event path.
  [[nodiscard]] bool should_warn(WarnSite site, std::int32_t a,
                                 std::int32_t b);
  [[nodiscard]] std::string channel_display_name(const Channel& c) const;
};

}  // namespace tydi::sim
