// Event-driven simulator for elaborated Tydi designs (Sec. V).
//
// The hierarchy is flattened: external implementations become leaf
// *components* and connection chains collapse into *channels* (one-deep
// handshake registers). Components carry behaviour — either a built-in C++
// model keyed by the stdlib template family (mirroring the hard-coded RTL
// generator) or an interpreted `sim { ... }` block from the source.
//
// Semantics:
//  - send(port, packet): if the channel register is free the packet is
//    delivered to the sink after the channel latency (one clock period of
//    the port's clock domain); otherwise it queues in the port outbox and
//    the waiting time is accounted as *blocked* time (the paper's
//    "waiting time of all output ports (blocked by handshaking)").
//  - the sink's behaviour decides when to ack; ack frees the register and
//    pulls the next packet from the source outbox.
//  - bottleneck analysis = channels ranked by blocked time (Sec. V-B);
//  - deadlock detection = wait-for cycle search when the event queue runs
//    dry while packets are still in flight.
//
// Architecture (see src/sim/README.md): the design flattens once into a
// `SimGraph` of dense-integer components and channels; a `Kernel`
// (src/sim/kernel.hpp) runs the deliver/timer/poke/stimulus event loop over
// a subset of that graph. The single-threaded engine drives one kernel over
// the whole graph; the sharded engine (src/sim/shard/) partitions the graph
// and drives K kernels on K threads under a conservative time-window
// barrier. Event ordering is a canonical (time, kind, channel/component)
// key — independent of insertion interleaving — so both drivers produce
// byte-identical `SimResult`s.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/elab/design.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/ring.hpp"
#include "src/sim/trace.hpp"
#include "src/support/diagnostic.hpp"
#include "src/support/intern.hpp"
#include "src/support/status.hpp"

namespace tydi::sim {

using support::Symbol;

/// One data packet travelling a channel. `value` is the abstract payload
/// (the simulator models timing, not bit-level data); `last` marks the end
/// of a dimension-1 sequence for aggregating components.
struct Packet {
  std::int64_t value = 0;
  bool last = false;
};

/// Stimulus for one top-level input port.
struct Stimulus {
  std::string port;
  /// (injection time ns, packet). Packets enter the port's channel in order;
  /// later packets queue behind un-acked earlier ones.
  std::vector<std::pair<double, Packet>> packets;
};

/// Cross-shard acknowledgement protocol of the sharded engine.
enum class AckMode : std::uint8_t {
  /// Synchronous acks: a sink's ack frees the source register at the same
  /// timestamp, reproduced by same-time fixpoint rounds. Byte-identical
  /// results for any shard count — the default contract.
  kExact = 0,
  /// Credit-based batching: every cross-shard channel gets a
  /// `credit_window`-deep send budget at partition time; sinks return acks
  /// in one batch per barrier round instead of per timestamp, and the
  /// runtime drops the zero-lookahead ack ready-path entirely. Ack (and
  /// therefore backpressure-release) timestamps shift by up to one window,
  /// so results are *functionally* equivalent to exact mode (same packets,
  /// same per-channel orders, same transitions) but not byte-identical —
  /// see sim::results_functionally_equivalent.
  kCredit = 1,
};

struct SimOptions {
  double max_time_ns = 1.0e6;
  /// Clock-domain name -> period ns ("the mapping from the clock-domain to
  /// physical frequency", Sec. V-B). Unlisted domains use default_period_ns.
  std::map<std::string, double> clock_period_ns;
  double default_period_ns = 10.0;
  std::vector<Stimulus> stimuli;
  /// Per-component model parameters keyed by flattened instance path, e.g.
  /// {"pu_inst_3", {{"latency_cycles", 8}}}.
  std::map<std::string, std::map<std::string, double>> model_params;
  /// Record the full packet trace (needed for testbench generation).
  bool record_trace = true;
  /// Number of simulation shards (worker threads). 1 = the single-queue
  /// engine; >1 partitions the flattened graph and runs the shards under a
  /// conservative time-window barrier (src/sim/shard/). Results are
  /// byte-identical for any shard count.
  int shards = 1;
  /// Partitioning strategy: true = balanced BFS partition that minimizes
  /// cross-shard channels; false = naive contiguous block partition by
  /// component index (useful to stress the cross-shard protocol in tests).
  bool auto_partition = true;
  /// Cross-shard acknowledgement protocol (sharded runs only; single-shard
  /// runs have no cut channels, so both modes are the single-queue engine).
  AckMode ack_mode = AckMode::kExact;
  /// Send credits per cross-shard channel in AckMode::kCredit (clamped to
  /// >= 1). Larger windows amortize more acks per barrier round at the
  /// price of longer backpressure-release latency.
  int credit_window = 8;
  /// Measured per-component activity weights for the partitioner (indexed
  /// by flattened component index, e.g. a prior SimResult's
  /// component_events). Empty = the degree heuristic. Exposed on the CLI as
  /// `tydic --sim-profile` (profiling pre-run).
  std::vector<double> component_weights;
  // --- Guard rails (src/sim/guard.hpp, src/sim/fault.hpp) ----------------
  /// Deterministic fault-injection plan for the sharded runtime (disabled
  /// by default; see FaultPlan). CLI: --sim-fault-seed / --sim-fault-plan.
  FaultPlan fault;
  /// No-progress watchdog: abort the run when the global processed-event
  /// counter has not moved for this many wall-clock ms. <= 0 disables.
  /// Catches cross-shard livelocks (e.g. lost/withheld acks) that the
  /// deadlock detector cannot see because the queues never quiesce.
  double watchdog_timeout_ms = 10000.0;
  /// Total wall-clock budget in ms; the run aborts with partial results
  /// when exceeded. <= 0 disables.
  double wall_clock_budget_ms = 0.0;
  /// Global processed-event budget; the run aborts with partial results
  /// when exceeded. 0 disables.
  std::uint64_t max_events = 0;
  /// Resident-set budget in MiB (getrusage high-water mark); the run aborts
  /// when exceeded. 0 disables.
  std::uint64_t rss_budget_mb = 0;
};

struct ChannelStats {
  std::string name;          ///< "srcpath.port -> dstpath.port"
  std::size_t packets = 0;   ///< delivered packets
  double blocked_ns = 0.0;   ///< total outbox waiting time
  double first_delivery_ns = 0.0;
  double last_delivery_ns = 0.0;
  /// Top streamlet port name when this channel touches the top boundary
  /// (""
  /// otherwise). Boundary-ness is a channel property, so the trace stores
  /// it once per channel instead of once per event.
  std::string top_port;
  bool top_input = false;   ///< driven by a top-level input port
  bool top_output = false;  ///< feeds a top-level output port
};

/// One traced transfer, materialized from the columnar trace on demand
/// (testbench emission, debugging — not the storage format; see
/// SimResult::trace and sim/trace.hpp).
struct TraceEvent {
  double time_ns = 0.0;
  std::string channel;  ///< same format as ChannelStats::name
  /// Index into SimResult::channels (the `channel` string is derived from
  /// it).
  std::int32_t channel_index = -1;
  Packet packet;
  bool is_top_input = false;
  bool is_top_output = false;
  std::string top_port;  ///< set for top-level boundary transfers
};

/// One state-variable transition of a sim-block component (Sec. V-B "record
/// the state-transition table of each implementation").
struct StateTransition {
  double time_ns = 0.0;
  std::string component;
  std::string variable;
  std::string from;
  std::string to;
};

/// Per-shard end-of-run snapshot: what each shard was doing when the run
/// ended — the abort point for watchdog/budget aborts, the quiesced
/// end-state for healthy runs. The fields are read after every worker
/// thread has joined, so no live state is touched.
struct ShardForensics {
  int shard = 0;
  /// Time of the shard's next pending event (kInfiniteTime when its queue
  /// is idle) — the window the round loop was trying to open.
  double window_time_ns = 0.0;
  /// Timestamp of the last event this shard dispatched.
  double last_event_time_ns = 0.0;
  std::uint64_t events_processed = 0;
  /// Events still queued in the shard's scheduler.
  std::size_t queue_depth = 0;
  /// Cross-shard messages parked in this shard's inbound mailbox cells.
  std::size_t mailbox_depth = 0;
  /// Remaining send credits over this shard's source-side cut channels
  /// (credit mode).
  std::int64_t credit_balance = 0;
  /// Delivered-but-unacked packets over this shard's sink-side cut
  /// channels (credit mode).
  std::int64_t unacked = 0;
  /// Consumed acks batched but not yet flushed to their source shards —
  /// nonzero here is the signature of a withheld-ack hang.
  std::int64_t pending_ack_batches = 0;

  [[nodiscard]] std::string summary() const;
};

struct SimResult {
  double end_time_ns = 0.0;
  /// Events popped from the scheduler queue (simulation work metric).
  std::uint64_t events_processed = 0;
  bool deadlock = false;
  /// The run did not complete: the watchdog detected no progress or a
  /// budget (events / wall-clock / RSS) was exceeded. All other fields hold
  /// the partial results up to the abort point.
  bool aborted = false;
  /// Machine-readable abort trigger ("watchdog-no-progress",
  /// "max-events-budget", "wall-clock-budget", "rss-budget").
  std::string abort_reason;
  /// One end-of-run snapshot per shard — populated on *every* run (the
  /// watchdog abort path and the healthy path alike), so successful runs
  /// expose queue/mailbox/credit end-state too. Aggregates are mirrored
  /// into the `tydi.sim.last.*` registry gauges; `summary()` prints the
  /// per-shard detail only for aborted runs.
  std::vector<ShardForensics> shard_forensics;
  /// Non-empty on deadlock when a wait-for cycle was found: the component
  /// paths forming the cycle.
  std::vector<std::string> deadlock_cycle;
  /// Components/channels still blocked at stall time (deadlock diagnosis).
  std::vector<std::string> blocked_report;
  std::vector<ChannelStats> channels;
  /// Output packets observed at each top-level output port.
  std::map<std::string, std::vector<std::pair<double, Packet>>> top_outputs;
  /// Columnar packet trace in canonical (time, channel) order; per-channel
  /// names and boundary info live in `channels`. Use trace_event(i) for a
  /// materialized per-event view.
  TraceBuffer trace;
  std::vector<StateTransition> state_transitions;
  /// Events dispatched per flattened component index (delivers at the sink,
  /// timers, pokes). Feed back into SimOptions::component_weights to
  /// profile-weight the partitioner.
  std::vector<std::uint64_t> component_events;

  /// Materializes trace entry `i` with the channel name / boundary fields
  /// resolved through `channels`.
  [[nodiscard]] TraceEvent trace_event(std::size_t i) const;

  /// Channel with the largest blocked time (the streaming bottleneck), or
  /// nullptr if nothing blocked. Ties break towards the lexicographically
  /// smaller channel name so the answer is deterministic.
  [[nodiscard]] const ChannelStats* bottleneck() const;
  /// Packets per nanosecond observed on a top output port.
  [[nodiscard]] double throughput(const std::string& top_port) const;
  [[nodiscard]] std::string summary() const;
  /// Classification for callers and the CLI exit code: kAborted when the
  /// guard stopped the run, kDeadlock on a wait-for cycle, kOk otherwise.
  [[nodiscard]] support::Status status() const;
};

class Behavior;  // behavior.hpp

/// Flattened leaf component. Ports are addressed by their index in the
/// owning streamlet's port list.
struct Component {
  std::string path;            ///< dotted instance path from the top
  const elab::Impl* impl = nullptr;
  const elab::Streamlet* streamlet = nullptr;
  std::unique_ptr<Behavior> behavior;
  double clock_period_ns = 10.0;  ///< resolved from the clock-domain map
  /// Packets delivered but not yet consumed by the behaviour, per port
  /// index (entries for output ports stay empty).
  std::vector<SlabRing<Packet>> inbox;
  /// Port index -> channel index this port feeds (-1 = unconnected).
  std::vector<std::int32_t> out_channel;
  /// Port index -> channel index feeding this port (-1 = unconnected).
  std::vector<std::int32_t> in_channel;

  // Out-of-line special members: Behavior is incomplete here.
  Component();
  Component(Component&&) noexcept;
  Component& operator=(Component&&) noexcept;
  ~Component();
};

/// (component, port-index) pair. component == -1 is the environment (top
/// boundary), in which case `port` indexes the top streamlet's ports.
struct ChannelEndpoint {
  std::int32_t component = -1;
  std::int32_t port = -1;
};

/// A packet waiting in a channel outbox, stamped with its enqueue time so
/// the drain can charge the blocked interval.
struct QueuedPacket {
  double enqueue_ns = 0.0;
  Packet packet;
};

struct Channel {
  ChannelEndpoint src;
  ChannelEndpoint dst;
  double latency_ns = 10.0;
  bool occupied = false;
  /// Sink-side mirror of `occupied` for cross-shard channels: set by the
  /// sink shard at delivery, cleared on ack. Owned by the sink shard, so
  /// the ack sanity check never reads source-owned state across threads.
  bool delivered_pending = false;
  Packet in_flight;
  /// Delivery time of the in-flight packet (valid while occupied). The
  /// sharded runtime uses it as the earliest time the remote sink could
  /// acknowledge (the ack-risk bound of the time-window protocol).
  double deliver_time_ns = 0.0;
  /// Shard owning the register + outbox (the source side). 0 in
  /// single-shard runs.
  std::int32_t src_shard = 0;
  /// Shard running the sink component's behaviour. 0 in single-shard runs.
  std::int32_t dst_shard = 0;
  // --- Credit protocol state (AckMode::kCredit, cut channels only) -------
  /// Credit protocol engaged for this channel. Set once at partition time,
  /// immutable while kernels run — both endpoints' threads read it, so it
  /// must not alias mutable per-side state (`credits` is source-owned and
  /// changes mid-round).
  bool credit = false;
  /// Source-owned remaining send credits (meaningful when `credit`).
  /// Negotiated to SimOptions::credit_window at partition time.
  std::int32_t credits = 0;
  /// Sink-owned delivered-but-unacked packet count (the credit-mode
  /// analogue of `delivered_pending`).
  std::int32_t unacked = 0;
  /// Sink-owned acks consumed since the last window boundary; flushed to
  /// the source shard as one batched message per round.
  std::int32_t ack_batch = 0;
  /// Sink-owned FIFO of packets that crossed the shard boundary but have
  /// not reached their deliver event yet (credit mode keeps up to
  /// `credit_window` packets in flight, so the one-deep `in_flight`
  /// register cannot carry them).
  SlabRing<Packet> arrivals;
  SlabRing<QueuedPacket> outbox;
  ChannelStats stats;

  [[nodiscard]] bool cross_shard() const { return src_shard != dst_shard; }
  [[nodiscard]] bool credit_mode() const { return credit; }
};

/// Lazy stimulus injection cursor: only the next packet of each stimulus
/// stream lives in the event queue. Cursor indices are global (options
/// order) so the canonical event key is identical for any shard count.
struct StimulusCursor {
  std::int32_t channel = -1;
  const Stimulus* stimulus = nullptr;
  std::size_t next = 0;
};

/// The flattened design: what the event kernels run over. Built once per
/// `Engine::run`. In sharded runs the component/channel tables are shared
/// between threads; each kernel only touches the state it owns (its
/// components' inboxes and behaviours, its channels' registers/outboxes).
struct SimGraph {
  const elab::Design* design = nullptr;
  const elab::Streamlet* top_streamlet = nullptr;
  std::vector<Component> components;
  std::vector<Channel> channels;
  /// Top streamlet port index -> channel driven by that (input) port.
  std::vector<std::int32_t> top_src_channel;
  /// Packets observed per top streamlet port index (folded into
  /// SimResult::top_outputs after the run). Each port is fed by exactly one
  /// channel, so shards append to disjoint entries.
  std::vector<std::vector<std::pair<double, Packet>>> top_out_packets;
  std::vector<StimulusCursor> stimulus_cursors;
  double default_period_ns = 10.0;
  /// Component index -> shard (all zero until partitioned).
  std::vector<std::int32_t> component_shard;
  int shard_count = 1;

  [[nodiscard]] std::string endpoint_name(const ChannelEndpoint& ep) const;
  [[nodiscard]] std::string channel_display_name(const Channel& c) const;
};

inline constexpr double kInfiniteTime = std::numeric_limits<double>::infinity();

/// Flattens the design's top implementation, resolves clock periods,
/// attaches behaviours, and builds the stimulus cursor table. Returns false
/// on fatal errors (no/structural-less top).
[[nodiscard]] bool build_sim_graph(const elab::Design& design,
                                   const SimOptions& options,
                                   support::DiagnosticEngine& diags,
                                   SimGraph& graph);

/// Generic workload: one stimulus per top-level input port with `packets`
/// packets at `interval_ns` spacing (values 0..n-1, `last` on the final
/// packet). Shared by `tydic --sim`, the scaling bench and the shard
/// determinism tests so every harness drives the same traffic shape.
[[nodiscard]] std::vector<Stimulus> generic_stimuli(
    const elab::Design& design, int packets, double interval_ns = 10.0);

class Engine {
 public:
  Engine(const elab::Design& design, support::DiagnosticEngine& diags);

  /// Flattens and simulates the design's top implementation. With
  /// `options.shards > 1` the run is dispatched to the sharded engine
  /// (src/sim/shard/); the result is byte-identical either way.
  [[nodiscard]] SimResult run(const SimOptions& options);

 private:
  const elab::Design& design_;
  support::DiagnosticEngine& diags_;
};

}  // namespace tydi::sim
