// Slab-backed ring buffer for simulator packet queues.
//
// Component inboxes and channel outboxes are FIFO queues with bursty
// occupancy: usually empty or a handful of packets, but deep-backpressure
// workloads push hundreds of packets through them. std::deque pays one
// node allocation per 512-byte block and scatters packets across the heap;
// SlabRing keeps all live packets in one contiguous power-of-two slab with
// head/size indices, so steady-state push/pop touches no allocator at all
// and iteration during deadlock analysis is a linear scan. Capacity only
// grows (doubling), mirroring the event queue's reuse policy.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

namespace tydi::sim {

template <typename T>
class SlabRing {
 public:
  SlabRing() = default;

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] T& front() { return slab_[head_]; }
  [[nodiscard]] const T& front() const { return slab_[head_]; }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  void emplace_back(Args&&... args) {
    if (size_ == capacity_) grow();
    slab_[(head_ + size_) & (capacity_ - 1)] = T{std::forward<Args>(args)...};
    ++size_;
  }

  void pop_front() {
    head_ = (head_ + 1) & (capacity_ - 1);
    --size_;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  void grow() {
    std::size_t next = capacity_ == 0 ? kInitialCapacity : capacity_ * 2;
    std::unique_ptr<T[]> slab(new T[next]);
    for (std::size_t i = 0; i < size_; ++i) {
      slab[i] = std::move(slab_[(head_ + i) & (capacity_ - 1)]);
    }
    slab_ = std::move(slab);
    capacity_ = next;
    head_ = 0;
  }

  static constexpr std::size_t kInitialCapacity = 8;

  std::unique_ptr<T[]> slab_;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace tydi::sim
