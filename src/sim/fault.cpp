#include "src/sim/fault.hpp"

#include <sstream>

namespace tydi::sim {

namespace {

/// splitmix64 finalizer — a counter-based hash good enough for fault
/// scheduling (we need decorrelated bits, not cryptography).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hash of (seed, shard, site, step) mapped into [0, 1).
double unit_hash(std::uint64_t seed, int shard, std::uint32_t site,
                 std::uint64_t step) {
  std::uint64_t h = mix64(seed);
  h = mix64(h ^ (static_cast<std::uint64_t>(shard) << 32 | site));
  h = mix64(h ^ step);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultPlan FaultPlan::from_seed(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  if (seed == 0) return plan;
  // Each site gets a seed-dependent probability in [0.05, 0.5]: every sweep
  // seed exercises every site, with varying intensity mixes.
  auto p = [&](std::uint32_t site) {
    return 0.05 + 0.45 * unit_hash(seed, /*shard=*/-1, site, /*step=*/0);
  };
  plan.delay_delivery_p = p(1);
  plan.barrier_jitter_p = p(2);
  plan.stall_p = p(3);
  plan.withhold_credit_p = p(4);
  return plan;
}

bool FaultPlan::parse(const std::string& spec, FaultPlan& plan,
                      std::string& error) {
  std::istringstream in(spec);
  std::string field;
  while (std::getline(in, field, ',')) {
    if (field.empty()) continue;
    std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      error = "fault plan field '" + field + "' is not key=value";
      return false;
    }
    std::string key = field.substr(0, eq);
    std::string value = field.substr(eq + 1);
    try {
      if (key == "seed") {
        plan.seed = std::stoull(value);
      } else if (key == "delay") {
        plan.delay_delivery_p = std::stod(value);
      } else if (key == "jitter") {
        plan.barrier_jitter_p = std::stod(value);
      } else if (key == "stall") {
        plan.stall_p = std::stod(value);
      } else if (key == "withhold") {
        plan.withhold_credit_p = std::stod(value);
      } else if (key == "spin") {
        plan.delay_spin_iters =
            static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "hang") {
        plan.withhold_acks_forever = value != "0";
      } else {
        error = "unknown fault plan key '" + key + "'";
        return false;
      }
    } catch (const std::exception&) {
      error = "cannot parse fault plan value '" + value + "' for key '" +
              key + "'";
      return false;
    }
  }
  if (plan.seed == 0) plan.seed = 1;  // an explicit plan is always active
  return true;
}

std::string FaultPlan::render() const {
  std::ostringstream out;
  out << "seed=" << seed << ",delay=" << delay_delivery_p
      << ",jitter=" << barrier_jitter_p << ",stall=" << stall_p
      << ",withhold=" << withhold_credit_p << ",spin=" << delay_spin_iters
      << ",hang=" << (withhold_acks_forever ? 1 : 0);
  return out.str();
}

bool FaultInjector::fires(Site site) {
  if (!plan_.enabled()) return false;
  double p = 0.0;
  switch (site) {
    case Site::kMailboxPost: p = plan_.delay_delivery_p; break;
    case Site::kBarrierArrive: p = plan_.barrier_jitter_p; break;
    case Site::kRoundStall: p = plan_.stall_p; break;
    case Site::kWithholdCredit: p = plan_.withhold_credit_p; break;
  }
  if (p <= 0.0) return false;
  std::uint64_t step = steps_[static_cast<std::uint32_t>(site)]++;
  return unit_hash(plan_.seed, shard_, static_cast<std::uint32_t>(site),
                   step) < p;
}

void FaultInjector::spin_delay() const {
  volatile std::uint64_t sink = 0;
  for (std::uint32_t i = 0; i < plan_.delay_spin_iters; ++i) sink += i;
  (void)sink;
}

}  // namespace tydi::sim
