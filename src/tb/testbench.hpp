// Testbench generation (Sec. V-C).
//
// The simulator records the packet trace at the top-level boundary; from it
// we generate
//  1. a Tydi-IR testbench (the "prediction strategy" text format: drive the
//     recorded inputs, expect the recorded outputs), and
//  2. a VHDL testbench that instantiates the top entity, plays the input
//     packets through the physical stream signals, and asserts the outputs,
// so low-level tools can verify that external implementations behave as
// their simulation code promised.
//
// Like every other backend (DRC, VHDL, fletchgen), testbench generation
// consumes the lowered `ir::Module`: port signal lists come from the
// `StreamLayout`s cached once at lowering, not from re-running
// `types::physical_streams()` per port.
#pragma once

#include <string>

#include "src/ir/ir.hpp"
#include "src/sim/engine.hpp"

namespace tydi::tb {

struct TestbenchOptions {
  std::string name = "tb_top";
  double clock_period_ns = 10.0;
};

/// Tydi-IR testbench text from a recorded simulation trace.
[[nodiscard]] std::string emit_ir_testbench(const ir::Module& module,
                                            const sim::SimResult& result,
                                            const TestbenchOptions& options);

/// VHDL testbench (entity + stimulus/checker process).
[[nodiscard]] std::string emit_vhdl_testbench(const ir::Module& module,
                                              const sim::SimResult& result,
                                              const TestbenchOptions& options);

}  // namespace tydi::tb
