#include "src/drc/drc.hpp"

#include <sstream>

#include "src/types/compat.hpp"

namespace tydi::drc {

using ir::EndpointStatus;
using ir::Index;
using ir::IrConnection;
using ir::IrEndpoint;
using ir::IrImpl;
using ir::IrInstance;
using ir::IrPort;
using ir::IrStreamlet;
using ir::kNoIndex;
using ir::Module;

std::string_view to_string(Rule r) {
  switch (r) {
    case Rule::kTypeEquality: return "type-equality";
    case Rule::kPortUseCount: return "port-use-count";
    case Rule::kDirection: return "direction";
    case Rule::kClockDomain: return "clock-domain";
    case Rule::kResolution: return "resolution";
  }
  return "?";
}

std::size_t DrcReport::count(Rule r) const {
  std::size_t n = 0;
  for (const Violation& v : violations) {
    if (v.rule == r) ++n;
  }
  return n;
}

std::string DrcReport::render() const {
  std::ostringstream out;
  out << "DRC report: " << violations.size() << " violation(s)\n";
  for (const Violation& v : violations) {
    out << "  [" << to_string(v.rule) << "] in " << v.impl << ": "
        << v.message << "\n";
  }
  return out.str();
}

namespace {

class ImplChecker {
 public:
  ImplChecker(const Module& module, const IrImpl& impl,
              const DrcOptions& options, DrcReport& report,
              support::DiagnosticEngine& diags)
      : module_(module),
        impl_(impl),
        options_(options),
        report_(report),
        diags_(diags) {}

  void run() {
    build_slots();
    check_connections();
    check_port_usage();
  }

 private:
  const Module& module_;
  const IrImpl& impl_;
  const DrcOptions& options_;
  DrcReport& report_;
  support::DiagnosticEngine& diags_;
  // Flat usage counters: one slot per endpoint of the impl (self ports
  // first, then each resolved instance's ports). slot = slot_base + port
  // index — no string-keyed map on the hot path.
  std::vector<std::size_t> drive_count_;
  std::size_t self_slot_base_ = 0;
  std::vector<std::size_t> instance_slot_base_;  ///< kNoSlot if unresolved
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  void violate(Rule rule, std::string message, support::Loc loc,
               bool as_error = true) {
    report_.violations.push_back(
        Violation{rule, impl_.name, message, loc});
    if (as_error) {
      diags_.error("drc", std::move(message), loc);
    } else {
      diags_.warning("drc", std::move(message), loc);
    }
  }

  [[nodiscard]] const IrStreamlet* self_streamlet() const {
    return module_.streamlet_of(impl_);
  }

  [[nodiscard]] const IrStreamlet* instance_streamlet(
      const IrInstance& inst) const {
    if (inst.impl == kNoIndex) return nullptr;
    return module_.streamlet_of(module_.impls[inst.impl]);
  }

  void build_slots() {
    std::size_t total = 0;
    const IrStreamlet* self = self_streamlet();
    self_slot_base_ = total;
    if (self != nullptr) total += self->ports.size();
    instance_slot_base_.reserve(impl_.instances.size());
    for (const IrInstance& inst : impl_.instances) {
      const IrStreamlet* cs = instance_streamlet(inst);
      if (cs == nullptr) {
        instance_slot_base_.push_back(kNoSlot);
        continue;
      }
      instance_slot_base_.push_back(total);
      total += cs->ports.size();
    }
    drive_count_.assign(total, 0);
  }

  /// Slot of a resolved endpoint, or kNoSlot.
  [[nodiscard]] std::size_t slot_of(const IrEndpoint& ep) const {
    if (!ep.ok()) return kNoSlot;
    if (ep.is_self()) return self_slot_base_ + ep.port;
    std::size_t base = instance_slot_base_[ep.instance];
    return base == kNoSlot ? kNoSlot : base + ep.port;
  }

  /// Reports the R5 violation recorded in the endpoint's lowering status.
  /// Returns the endpoint's port when resolved, nullptr otherwise.
  const IrPort* resolve(const IrEndpoint& ep) {
    switch (ep.status) {
      case EndpointStatus::kOk:
        return module_.resolve(impl_, ep);
      case EndpointStatus::kUnknownStreamlet:
        violate(Rule::kResolution,
                "impl '" + impl_.name + "' has unknown streamlet '" +
                    support::symbol_name(impl_.streamlet_sym) + "'",
                impl_.loc);
        return nullptr;
      case EndpointStatus::kUnknownInstance:
        violate(Rule::kResolution,
                "unknown instance '" +
                    support::symbol_name(ep.instance_sym) + "' in '" +
                    impl_.display_name + "'",
                ep.loc);
        return nullptr;
      case EndpointStatus::kUnresolvedImpl:
        violate(Rule::kResolution,
                "instance '" + support::symbol_name(ep.instance_sym) +
                    "' has unresolved impl '" +
                    support::symbol_name(
                        impl_.instances[ep.instance].impl_sym) +
                    "'",
                ep.loc);
        return nullptr;
      case EndpointStatus::kUnknownPort:
        if (ep.is_self()) {
          violate(Rule::kResolution,
                  "unknown port '" + support::symbol_name(ep.port_sym) +
                      "' on impl '" + impl_.display_name + "'",
                  ep.loc);
        } else {
          const IrStreamlet* cs =
              instance_streamlet(impl_.instances[ep.instance]);
          violate(Rule::kResolution,
                  "unknown port '" + support::symbol_name(ep.port_sym) +
                      "' on instance '" +
                      support::symbol_name(ep.instance_sym) + "' (" +
                      (cs != nullptr ? cs->display_name : "?") + ")",
                  ep.loc);
        }
        return nullptr;
    }
    return nullptr;
  }

  void check_connections() {
    for (const IrConnection& c : impl_.connections) {
      const IrPort* src = resolve(c.src);
      const IrPort* dst = resolve(c.dst);
      if (src == nullptr || dst == nullptr) continue;

      // R3: direction.
      bool src_is_source = ir::endpoint_is_source(src->dir, c.src.is_self());
      bool dst_is_sink = !ir::endpoint_is_source(dst->dir, c.dst.is_self());
      if (!src_is_source) {
        violate(Rule::kDirection,
                "left side of connection " + c.src.display() + " => " +
                    c.dst.display() + " is not a data source",
                c.loc);
      }
      if (!dst_is_sink) {
        violate(Rule::kDirection,
                "right side of connection " + c.src.display() + " => " +
                    c.dst.display() + " is not a data sink",
                c.loc);
      }

      // R1: type equality + complexity compatibility.
      if (src->type != nullptr && dst->type != nullptr) {
        types::CompatResult compat = types::check_connection(
            *src->type, *dst->type, /*strict=*/!c.structural);
        if (!compat.ok) {
          violate(Rule::kTypeEquality,
                  "connection " + c.src.display() + " => " +
                      c.dst.display() + ": " + compat.reason,
                  c.loc);
        }
      }

      // R4: clock domains (symbol comparison, not string comparison).
      if (src->clock_sym != dst->clock_sym) {
        violate(Rule::kClockDomain,
                "connection " + c.src.display() + " => " + c.dst.display() +
                    " crosses clock domains ('" + src->clock_domain +
                    "' vs '" + dst->clock_domain + "')",
                c.loc);
      }

      // Track usage for R2 regardless of the above.
      if (src_is_source) {
        std::size_t slot = slot_of(c.src);
        if (slot != kNoSlot) ++drive_count_[slot];
      }
      if (dst_is_sink) {
        std::size_t slot = slot_of(c.dst);
        if (slot != kNoSlot) ++drive_count_[slot];
      }
    }
  }

  void report_usage(bool is_source, const std::string& display,
                    std::size_t n, support::Loc loc) {
    const bool as_error = options_.port_use_count_is_error;
    if (is_source) {
      if (n == 0) {
        violate(Rule::kPortUseCount,
                "source " + display + " is never used (each port must "
                "be used exactly once; sugaring would insert a voider)",
                loc, as_error);
      } else if (n > 1) {
        violate(Rule::kPortUseCount,
                "source " + display + " drives " + std::to_string(n) +
                    " connections (each port must be used exactly once; "
                    "sugaring would insert a duplicator)",
                loc, as_error);
      }
    } else {
      if (n == 0) {
        violate(Rule::kPortUseCount,
                "sink " + display + " is never driven",
                loc, as_error);
      } else if (n > 1) {
        violate(Rule::kPortUseCount,
                "sink " + display + " is driven by " + std::to_string(n) +
                    " connections",
                loc, as_error);
      }
    }
  }

  void check_port_usage() {
    const IrStreamlet* self = self_streamlet();
    if (self != nullptr) {
      for (std::size_t i = 0; i < self->ports.size(); ++i) {
        const IrPort& p = self->ports[i];
        bool is_source = (p.dir == lang::PortDir::kIn);
        report_usage(is_source, p.name, drive_count_[self_slot_base_ + i],
                     p.loc);
      }
    }
    for (std::size_t k = 0; k < impl_.instances.size(); ++k) {
      const IrInstance& inst = impl_.instances[k];
      const IrStreamlet* cs = instance_streamlet(inst);
      if (cs == nullptr || instance_slot_base_[k] == kNoSlot) continue;
      for (std::size_t i = 0; i < cs->ports.size(); ++i) {
        const IrPort& p = cs->ports[i];
        bool is_source = (p.dir == lang::PortDir::kOut);
        report_usage(is_source, inst.name + "." + p.name,
                     drive_count_[instance_slot_base_[k] + i], inst.loc);
      }
    }
  }
};

}  // namespace

DrcReport check(const Module& module, const DrcOptions& options,
                support::DiagnosticEngine& diags) {
  DrcReport report;
  for (const IrImpl& impl : module.impls) {
    if (impl.external) continue;
    ImplChecker checker(module, impl, options, report, diags);
    checker.run();
  }
  return report;
}

}  // namespace tydi::drc
