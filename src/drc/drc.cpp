#include "src/drc/drc.hpp"

#include <map>
#include <sstream>

#include "src/types/compat.hpp"

namespace tydi::drc {

using elab::Connection;
using elab::Design;
using elab::Endpoint;
using elab::Impl;
using elab::Instance;
using elab::Port;
using elab::Streamlet;

std::string_view to_string(Rule r) {
  switch (r) {
    case Rule::kTypeEquality: return "type-equality";
    case Rule::kPortUseCount: return "port-use-count";
    case Rule::kDirection: return "direction";
    case Rule::kClockDomain: return "clock-domain";
    case Rule::kResolution: return "resolution";
  }
  return "?";
}

std::size_t DrcReport::count(Rule r) const {
  std::size_t n = 0;
  for (const Violation& v : violations) {
    if (v.rule == r) ++n;
  }
  return n;
}

std::string DrcReport::render() const {
  std::ostringstream out;
  out << "DRC report: " << violations.size() << " violation(s)\n";
  for (const Violation& v : violations) {
    out << "  [" << to_string(v.rule) << "] in " << v.impl << ": "
        << v.message << "\n";
  }
  return out.str();
}

namespace {

struct ResolvedEndpoint {
  const Port* port = nullptr;
  bool is_self = false;
};

class ImplChecker {
 public:
  ImplChecker(const Design& design, const Impl& impl,
              const DrcOptions& options, DrcReport& report,
              support::DiagnosticEngine& diags)
      : design_(design),
        impl_(impl),
        options_(options),
        report_(report),
        diags_(diags) {}

  void run() {
    check_connections();
    check_port_usage();
  }

 private:
  const Design& design_;
  const Impl& impl_;
  const DrcOptions& options_;
  DrcReport& report_;
  support::DiagnosticEngine& diags_;
  // usage counters keyed by endpoint display name
  std::map<std::string, std::size_t> source_drive_count_;
  std::map<std::string, std::size_t> sink_driven_count_;

  void violate(Rule rule, std::string message, support::Loc loc,
               bool as_error = true) {
    report_.violations.push_back(
        Violation{rule, impl_.name, message, loc});
    if (as_error) {
      diags_.error("drc", std::move(message), loc);
    } else {
      diags_.warning("drc", std::move(message), loc);
    }
  }

  ResolvedEndpoint resolve(const Endpoint& ep) {
    ResolvedEndpoint r;
    r.is_self = ep.instance.empty();
    if (r.is_self) {
      const Streamlet* self = design_.streamlet_of(impl_);
      if (self == nullptr) {
        violate(Rule::kResolution,
                "impl '" + impl_.name + "' has unknown streamlet '" +
                    impl_.streamlet_name + "'",
                impl_.loc);
        return r;
      }
      r.port = self->find_port(ep.port);
      if (r.port == nullptr) {
        violate(Rule::kResolution,
                "unknown port '" + ep.port + "' on impl '" +
                    impl_.display_name + "'",
                ep.loc);
      }
      return r;
    }
    const Instance* inst = impl_.find_instance(ep.instance);
    if (inst == nullptr) {
      violate(Rule::kResolution,
              "unknown instance '" + ep.instance + "' in '" +
                  impl_.display_name + "'",
              ep.loc);
      return r;
    }
    const Impl* child = design_.find_impl(inst->impl_name);
    const Streamlet* child_streamlet =
        child != nullptr ? design_.streamlet_of(*child) : nullptr;
    if (child_streamlet == nullptr) {
      violate(Rule::kResolution,
              "instance '" + ep.instance + "' has unresolved impl '" +
                  inst->impl_name + "'",
              ep.loc);
      return r;
    }
    r.port = child_streamlet->find_port(ep.port);
    if (r.port == nullptr) {
      violate(Rule::kResolution,
              "unknown port '" + ep.port + "' on instance '" + ep.instance +
                  "' (" + child_streamlet->display_name + ")",
              ep.loc);
    }
    return r;
  }

  void check_connections() {
    for (const Connection& c : impl_.connections) {
      ResolvedEndpoint src = resolve(c.src);
      ResolvedEndpoint dst = resolve(c.dst);
      if (src.port == nullptr || dst.port == nullptr) continue;

      // R3: direction.
      bool src_is_source = elab::endpoint_is_source(src.port->dir,
                                                    src.is_self);
      bool dst_is_sink = !elab::endpoint_is_source(dst.port->dir,
                                                   dst.is_self);
      if (!src_is_source) {
        violate(Rule::kDirection,
                "left side of connection " + c.src.display() + " => " +
                    c.dst.display() + " is not a data source",
                c.loc);
      }
      if (!dst_is_sink) {
        violate(Rule::kDirection,
                "right side of connection " + c.src.display() + " => " +
                    c.dst.display() + " is not a data sink",
                c.loc);
      }

      // R1: type equality + complexity compatibility.
      types::CompatResult compat = types::check_connection(
          *src.port->type, *dst.port->type, /*strict=*/!c.structural);
      if (!compat.ok) {
        violate(Rule::kTypeEquality,
                "connection " + c.src.display() + " => " + c.dst.display() +
                    ": " + compat.reason,
                c.loc);
      }

      // R4: clock domains.
      if (src.port->clock_domain != dst.port->clock_domain) {
        violate(Rule::kClockDomain,
                "connection " + c.src.display() + " => " + c.dst.display() +
                    " crosses clock domains ('" + src.port->clock_domain +
                    "' vs '" + dst.port->clock_domain + "')",
                c.loc);
      }

      // Track usage for R2 regardless of the above.
      if (src_is_source) ++source_drive_count_[c.src.display()];
      if (dst_is_sink) ++sink_driven_count_[c.dst.display()];
    }
  }

  void enumerate_endpoints(
      std::vector<std::pair<Endpoint, bool>>& sources,
      std::vector<std::pair<Endpoint, bool>>& sinks) const {
    const Streamlet* self = design_.streamlet_of(impl_);
    if (self != nullptr) {
      for (const Port& p : self->ports) {
        Endpoint ep{"", p.name, p.loc};
        if (p.dir == lang::PortDir::kIn) {
          sources.emplace_back(ep, true);
        } else {
          sinks.emplace_back(ep, true);
        }
      }
    }
    for (const Instance& inst : impl_.instances) {
      const Impl* child = design_.find_impl(inst.impl_name);
      const Streamlet* cs =
          child != nullptr ? design_.streamlet_of(*child) : nullptr;
      if (cs == nullptr) continue;
      for (const Port& p : cs->ports) {
        Endpoint ep{inst.name, p.name, inst.loc};
        if (p.dir == lang::PortDir::kOut) {
          sources.emplace_back(ep, false);
        } else {
          sinks.emplace_back(ep, false);
        }
      }
    }
  }

  void check_port_usage() {
    std::vector<std::pair<Endpoint, bool>> sources;
    std::vector<std::pair<Endpoint, bool>> sinks;
    enumerate_endpoints(sources, sinks);
    const bool as_error = options_.port_use_count_is_error;

    for (const auto& [ep, is_self] : sources) {
      auto it = source_drive_count_.find(ep.display());
      std::size_t n = it == source_drive_count_.end() ? 0 : it->second;
      if (n == 0) {
        violate(Rule::kPortUseCount,
                "source " + ep.display() + " is never used (each port must "
                "be used exactly once; sugaring would insert a voider)",
                ep.loc, as_error);
      } else if (n > 1) {
        violate(Rule::kPortUseCount,
                "source " + ep.display() + " drives " + std::to_string(n) +
                    " connections (each port must be used exactly once; "
                    "sugaring would insert a duplicator)",
                ep.loc, as_error);
      }
    }
    for (const auto& [ep, is_self] : sinks) {
      auto it = sink_driven_count_.find(ep.display());
      std::size_t n = it == sink_driven_count_.end() ? 0 : it->second;
      if (n == 0) {
        violate(Rule::kPortUseCount,
                "sink " + ep.display() + " is never driven",
                ep.loc, as_error);
      } else if (n > 1) {
        violate(Rule::kPortUseCount,
                "sink " + ep.display() + " is driven by " +
                    std::to_string(n) + " connections",
                ep.loc, as_error);
      }
    }
  }
};

}  // namespace

DrcReport check(const Design& design, const DrcOptions& options,
                support::DiagnosticEngine& diags) {
  DrcReport report;
  for (const Impl& impl : design.impls()) {
    if (impl.external) continue;
    ImplChecker checker(design, impl, options, report, diags);
    checker.run();
  }
  return report;
}

}  // namespace tydi::drc
