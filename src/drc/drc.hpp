// Design-rule check (Sec. III): the high-level checks Tydi-lang performs
// before the type information is erased by VHDL generation.
//
// Rules (paper Sec. III + Table I "Connection" row):
//  R1 type equality     — connected ports carry the identical logical type
//                         (strict named equality unless `@structural`), with
//                         complexity compatibility source <= sink.
//  R2 port usage count  — every port is used exactly once under the
//                         handshaking mechanism: each source drives exactly
//                         one connection and each sink is driven exactly
//                         once (sugaring inserts duplicators/voiders to make
//                         fan-out/unused ports conform).
//  R3 direction         — connections flow source -> sink (self `in` or
//                         instance `out` on the left, self `out` or instance
//                         `in` on the right).
//  R4 clock domain      — both ports live in the same clock domain.
//  R5 resolution        — every endpoint names an existing instance/port
//                         (read off the IR's endpoint resolution status).
//
// The checker consumes the lowered ir::Module: endpoints arrive
// pre-resolved to dense (instance, port) indices, usage counters are flat
// vectors indexed by endpoint slot, and no string-keyed map is touched.
#pragma once

#include <string>
#include <vector>

#include "src/ir/ir.hpp"
#include "src/support/diagnostic.hpp"

namespace tydi::drc {

enum class Rule {
  kTypeEquality,
  kPortUseCount,
  kDirection,
  kClockDomain,
  kResolution,
};

[[nodiscard]] std::string_view to_string(Rule r);

struct Violation {
  Rule rule{};
  std::string impl;     ///< implementation (mangled name) containing it
  std::string message;
  support::Loc loc;
};

/// The "DRC report" of Fig. 3.
struct DrcReport {
  std::vector<Violation> violations;

  [[nodiscard]] bool clean() const { return violations.empty(); }
  [[nodiscard]] std::size_t count(Rule r) const;
  [[nodiscard]] std::string render() const;
};

struct DrcOptions {
  /// When false, R2 is reported as warnings instead of errors (useful for
  /// inspecting unsugared designs, cf. the non-sugared Table IV row).
  bool port_use_count_is_error = true;
};

/// Checks every non-external implementation of the lowered module.
/// Violations are both returned and mirrored into `diags` (phase "drc").
[[nodiscard]] DrcReport check(const ir::Module& module,
                              const DrcOptions& options,
                              support::DiagnosticEngine& diags);

}  // namespace tydi::drc
