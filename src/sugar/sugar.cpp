#include "src/sugar/sugar.hpp"

#include <map>
#include <sstream>
#include <vector>

#include "src/support/text.hpp"

namespace tydi::sugar {

using elab::Connection;
using elab::Design;
using elab::Endpoint;
using elab::Impl;
using elab::Instance;
using elab::Port;
using elab::Streamlet;

std::string SugarStats::summary() const {
  std::ostringstream out;
  out << "sugaring: " << duplicators_inserted << " duplicator(s), "
      << voiders_inserted << " voider(s), " << duplicated_channels
      << " duplicated channel(s)";
  return out.str();
}

namespace {

std::uint64_t fnv(std::string_view text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex8(std::uint64_t h) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 0; i < 8; ++i) out[i] = digits[(h >> (i * 4)) & 0xF];
  return out;
}

/// Ensures the voider streamlet+impl for `type` exist; returns the impl name.
std::string materialize_voider(Design& design, const types::TypeRef& type) {
  std::string token = type_token(type);
  std::string streamlet_name = "std_voider_s__" + token;
  std::string impl_name = "std_voider_i__" + token;
  if (design.find_impl(impl_name) != nullptr) return impl_name;

  Streamlet s;
  s.name = streamlet_name;
  s.display_name = "voider_s<" + type->to_display() + ">";
  s.ports.push_back(Port{"in_", type, lang::PortDir::kIn, "default", {}});
  design.add_streamlet(std::move(s));

  Impl i;
  i.name = impl_name;
  i.display_name = "voider_i<" + type->to_display() + ">";
  i.template_name = "voider_i";
  {
    elab::TemplateArgValue t;
    t.kind = elab::TemplateArgValue::Kind::kType;
    t.type = type;
    i.template_args.push_back(std::move(t));
  }
  i.streamlet_name = streamlet_name;
  i.streamlet_family = "voider_s";
  i.external = true;
  design.add_impl(std::move(i));
  return impl_name;
}

/// Ensures the duplicator streamlet+impl for `type` with `channels` outputs
/// exist; returns the impl name.
std::string materialize_duplicator(Design& design, const types::TypeRef& type,
                                   std::size_t channels) {
  std::string token =
      type_token(type) + "_x" + std::to_string(channels);
  std::string streamlet_name = "std_duplicator_s__" + token;
  std::string impl_name = "std_duplicator_i__" + token;
  if (design.find_impl(impl_name) != nullptr) return impl_name;

  Streamlet s;
  s.name = streamlet_name;
  s.display_name = "duplicator_s<" + type->to_display() + ", " +
                   std::to_string(channels) + ">";
  s.ports.push_back(Port{"in_", type, lang::PortDir::kIn, "default", {}});
  for (std::size_t k = 0; k < channels; ++k) {
    s.ports.push_back(Port{"out_" + std::to_string(k), type,
                           lang::PortDir::kOut, "default", {}});
  }
  design.add_streamlet(std::move(s));

  Impl i;
  i.name = impl_name;
  i.display_name = "duplicator_i<" + type->to_display() + ", " +
                   std::to_string(channels) + ">";
  i.template_name = "duplicator_i";
  {
    elab::TemplateArgValue t;
    t.kind = elab::TemplateArgValue::Kind::kType;
    t.type = type;
    i.template_args.push_back(std::move(t));
    elab::TemplateArgValue n;
    n.kind = elab::TemplateArgValue::Kind::kValue;
    n.value = eval::Value(static_cast<std::int64_t>(channels));
    i.template_args.push_back(std::move(n));
  }
  i.streamlet_name = streamlet_name;
  i.streamlet_family = "duplicator_s";
  i.external = true;
  design.add_impl(std::move(i));
  return impl_name;
}

struct SourceInfo {
  Endpoint endpoint;
  types::TypeRef type;
  std::vector<std::size_t> connection_indices;  // where endpoint is src
};

// NOTE: the impl under work is addressed by *index*; the first mutation
// clones it via impl_mutable (copy-on-write off a payload possibly shared
// with the template memo) and the private clone is then mutated in place —
// it is heap-stable across the add_impl calls of later materializations.
void sugar_impl(Design& design, std::size_t impl_index,
                const SugarOptions& options, SugarStats& stats,
                support::DiagnosticEngine& diags) {
  // Enumerate every source endpoint of this implementation with its type.
  std::vector<SourceInfo> sources;
  auto add_source = [&sources](Endpoint ep, types::TypeRef type) {
    sources.push_back(SourceInfo{std::move(ep), std::move(type), {}});
  };

  {
    const Impl& impl = design.impls()[impl_index];
    const Streamlet* self = design.streamlet_of(impl);
    if (self == nullptr) return;
    for (const Port& p : self->ports) {
      if (p.dir == lang::PortDir::kIn) {
        add_source(Endpoint{"", p.name, p.loc}, p.type);
      }
    }
    for (const Instance& inst : impl.instances) {
      const Impl* child = design.find_impl(inst.impl_name);
      if (child == nullptr) continue;
      const Streamlet* child_streamlet = design.streamlet_of(*child);
      if (child_streamlet == nullptr) continue;
      for (const Port& p : child_streamlet->ports) {
        if (p.dir == lang::PortDir::kOut) {
          add_source(Endpoint{inst.name, p.name, inst.loc}, p.type);
        }
      }
    }

    // Attribute each connection to its source endpoint. Keyed by the
    // (instance, port) symbol pair packed into one integer — no display
    // strings, no string-compare tree walks.
    auto key_of = [](const Endpoint& ep) {
      return (static_cast<std::uint64_t>(support::intern(ep.instance))
              << 32U) |
             support::intern(ep.port);
    };
    std::unordered_map<std::uint64_t, std::size_t> source_index;
    source_index.reserve(sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      source_index[key_of(sources[i].endpoint)] = i;
    }
    for (std::size_t c = 0; c < impl.connections.size(); ++c) {
      auto it = source_index.find(key_of(impl.connections[c].src));
      if (it != source_index.end()) {
        sources[it->second].connection_indices.push_back(c);
      }
    }
  }

  std::size_t auto_counter = 0;
  Impl* mut = nullptr;  // lazily cloned: untouched impls stay shared
  auto mutable_impl = [&design, impl_index, &mut]() -> Impl& {
    if (mut == nullptr) mut = &design.impl_mutable(impl_index);
    return *mut;
  };
  for (const SourceInfo& src : sources) {
    const std::size_t fanout = src.connection_indices.size();
    if (fanout == 0 && options.insert_voiders) {
      // Fig. 4 left: unused output -> voider.
      std::string voider = materialize_voider(design, src.type);
      Impl& impl = mutable_impl();
      std::string inst_name = "auto_void_" + std::to_string(auto_counter++);
      impl.instances.push_back(
          Instance{inst_name, voider, support::Loc::synthesized()});
      Connection conn;
      conn.src = src.endpoint;
      conn.dst = Endpoint{inst_name, "in_", support::Loc::synthesized()};
      impl.connections.push_back(std::move(conn));
      ++stats.voiders_inserted;
      diags.note("sugar",
                 "inserted voider for unused source " +
                     src.endpoint.display() + " in '" + impl.display_name +
                     "'",
                 src.endpoint.loc);
    } else if (fanout > 1 && options.insert_duplicators) {
      // Fig. 4 right: fan-out -> duplicator with `fanout` channels.
      std::string dup = materialize_duplicator(design, src.type, fanout);
      Impl& impl = mutable_impl();
      std::string inst_name = "auto_dup_" + std::to_string(auto_counter++);
      impl.instances.push_back(
          Instance{inst_name, dup, support::Loc::synthesized()});
      for (std::size_t k = 0; k < fanout; ++k) {
        Connection& rewired = impl.connections[src.connection_indices[k]];
        rewired.src =
            Endpoint{inst_name, "out_" + std::to_string(k), rewired.loc};
      }
      Connection feed;
      feed.src = src.endpoint;
      feed.dst = Endpoint{inst_name, "in_", support::Loc::synthesized()};
      impl.connections.push_back(std::move(feed));
      ++stats.duplicators_inserted;
      stats.duplicated_channels += fanout;
      diags.note("sugar",
                 "inserted " + std::to_string(fanout) +
                     "-way duplicator for " + src.endpoint.display() +
                     " in '" + impl.display_name + "'",
                 src.endpoint.loc);
    }
  }
}

}  // namespace

std::string type_token(const types::TypeRef& type) {
  if (type == nullptr) return "null";
  std::string display = type->to_display();
  std::string base = type->origin().empty()
                         ? "anon"
                         : support::sanitize_identifier(type->origin());
  return base + "_" + hex8(fnv(display));
}

SugarStats apply_sugaring(Design& design, const SugarOptions& options,
                          support::DiagnosticEngine& diags) {
  SugarStats stats;
  // Index-based loop: materializing stdlib impls appends to design.impls.
  const std::size_t original_count = design.impls().size();
  for (std::size_t i = 0; i < original_count; ++i) {
    if (design.impls()[i].external) continue;
    sugar_impl(design, i, options, stats, diags);
  }
  return stats;
}

}  // namespace tydi::sugar
