// Sugaring pass (Sec. IV-D, Fig. 4): automatic duplicator and voider
// template insertion.
//
// Inside an implementation, every data *source* (a self input port or an
// instance output port) must feed exactly one sink under the Tydi handshake.
// Software-style designs naturally fan out (use a value twice) or drop
// values (ignore a generated column); sugaring restores the one-to-one
// discipline by inserting standard-library components:
//
//  - fan-out  > 1: a `duplicator` with the inferred stream type and channel
//    count is inserted between the source and its sinks;
//  - fan-out == 0: a `voider` (always-ready sink) consumes the stream.
//
// The inserted impls are *external* standard-library template instances,
// materialized directly into the Design (this pass acts as the hard-coded
// generator of Sec. IV-C for these two templates).
#pragma once

#include <string>

#include "src/elab/design.hpp"
#include "src/support/diagnostic.hpp"

namespace tydi::sugar {

struct SugarOptions {
  bool insert_duplicators = true;
  bool insert_voiders = true;
};

struct SugarStats {
  std::size_t duplicators_inserted = 0;
  std::size_t voiders_inserted = 0;
  /// Total extra output channels created by duplicators (sum of fan-outs).
  std::size_t duplicated_channels = 0;

  [[nodiscard]] std::string summary() const;
};

/// Applies sugaring to every non-external implementation in `design`.
/// Unknown endpoints are skipped (the DRC reports them).
SugarStats apply_sugaring(elab::Design& design, const SugarOptions& options,
                          support::DiagnosticEngine& diags);

/// Mangled-name token for a logical type, used when materializing stdlib
/// instances for that type (duplicators, voiders).
[[nodiscard]] std::string type_token(const types::TypeRef& type);

}  // namespace tydi::sugar
