#include "src/ast/ast.hpp"

#include <sstream>

#include "src/support/text.hpp"

namespace tydi::lang {

std::string_view to_string(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kPow: return "**";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
    case BinaryOp::kRange: return "->";
  }
  return "?";
}

std::string_view to_string(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNeg: return "-";
    case UnaryOp::kNot: return "!";
  }
  return "?";
}

std::string_view to_string(Synchronicity s) {
  switch (s) {
    case Synchronicity::kSync: return "Sync";
    case Synchronicity::kFlatten: return "Flatten";
    case Synchronicity::kDesync: return "Desync";
    case Synchronicity::kFlatDesync: return "FlatDesync";
  }
  return "?";
}

std::string_view to_string(StreamDir d) {
  switch (d) {
    case StreamDir::kForward: return "Forward";
    case StreamDir::kReverse: return "Reverse";
  }
  return "?";
}

std::string_view to_string(ParamKind k) {
  switch (k) {
    case ParamKind::kInt: return "int";
    case ParamKind::kFloat: return "float";
    case ParamKind::kString: return "string";
    case ParamKind::kBool: return "bool";
    case ParamKind::kClockdomain: return "clockdomain";
    case ParamKind::kType: return "type";
    case ParamKind::kImpl: return "impl";
  }
  return "?";
}

std::string_view to_string(PortDir d) {
  return d == PortDir::kIn ? "in" : "out";
}

ExprPtr make_expr(Loc loc,
                  std::variant<IntLit, FloatLit, StringLit, BoolLit, Ident,
                               Binary, Unary, Call, ArrayLit, IndexExpr>
                      node) {
  auto e = std::make_unique<Expr>();
  e->loc = loc;
  e->node = std::move(node);
  return e;
}

TypeExprPtr make_type(Loc loc,
                      std::variant<NullTypeExpr, BitTypeExpr, NamedTypeExpr,
                                   StreamTypeExpr>
                          node) {
  auto t = std::make_unique<TypeExpr>();
  t->loc = loc;
  t->node = std::move(node);
  return t;
}

namespace {

ExprPtr clone_opt(const ExprPtr& e) { return e ? clone(*e) : nullptr; }
TypeExprPtr clone_opt(const TypeExprPtr& t) { return t ? clone(*t) : nullptr; }

}  // namespace

ExprPtr clone(const Expr& e) {
  using V = std::variant<IntLit, FloatLit, StringLit, BoolLit, Ident, Binary,
                         Unary, Call, ArrayLit, IndexExpr>;
  V copy = std::visit(
      [](const auto& n) -> V {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, Binary>) {
          return Binary{n.op, clone_opt(n.lhs), clone_opt(n.rhs)};
        } else if constexpr (std::is_same_v<T, Unary>) {
          return Unary{n.op, clone_opt(n.operand)};
        } else if constexpr (std::is_same_v<T, Call>) {
          Call c;
          c.callee = n.callee;
          for (const auto& a : n.args) c.args.push_back(clone(*a));
          return c;
        } else if constexpr (std::is_same_v<T, ArrayLit>) {
          ArrayLit a;
          for (const auto& el : n.elems) a.elems.push_back(clone(*el));
          return a;
        } else if constexpr (std::is_same_v<T, IndexExpr>) {
          return IndexExpr{clone_opt(n.base), clone_opt(n.index)};
        } else {
          return n;  // leaf nodes copy trivially
        }
      },
      e.node);
  return make_expr(e.loc, std::move(copy));
}

TypeExprPtr clone(const TypeExpr& t) {
  using V =
      std::variant<NullTypeExpr, BitTypeExpr, NamedTypeExpr, StreamTypeExpr>;
  V copy = std::visit(
      [](const auto& n) -> V {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, BitTypeExpr>) {
          return BitTypeExpr{clone_opt(n.width)};
        } else if constexpr (std::is_same_v<T, StreamTypeExpr>) {
          StreamTypeExpr s;
          s.element = clone_opt(n.element);
          s.throughput = clone_opt(n.throughput);
          s.dimension = clone_opt(n.dimension);
          s.complexity = clone_opt(n.complexity);
          s.synchronicity = n.synchronicity;
          s.direction = n.direction;
          s.user = clone_opt(n.user);
          return s;
        } else {
          return n;
        }
      },
      t.node);
  return make_type(t.loc, std::move(copy));
}

TemplateArg::TemplateArg(const TemplateArg& other)
    : kind(other.kind),
      expr(other.expr ? clone(*other.expr) : nullptr),
      type(other.type ? clone(*other.type) : nullptr),
      impl_name(other.impl_name),
      loc(other.loc) {}

TemplateArg& TemplateArg::operator=(const TemplateArg& other) {
  if (this == &other) return *this;
  kind = other.kind;
  expr = other.expr ? clone(*other.expr) : nullptr;
  type = other.type ? clone(*other.type) : nullptr;
  impl_name = other.impl_name;
  loc = other.loc;
  return *this;
}

// ---------------------------------------------------------------------------
// Pretty printer
// ---------------------------------------------------------------------------

namespace {

void print_expr(std::ostream& out, const Expr& e);

void print_type(std::ostream& out, const TypeExpr& t) {
  std::visit(
      [&out](const auto& n) {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, NullTypeExpr>) {
          out << "Null";
        } else if constexpr (std::is_same_v<T, BitTypeExpr>) {
          out << "Bit(";
          print_expr(out, *n.width);
          out << ")";
        } else if constexpr (std::is_same_v<T, NamedTypeExpr>) {
          out << n.name;
        } else if constexpr (std::is_same_v<T, StreamTypeExpr>) {
          out << "Stream(";
          print_type(out, *n.element);
          if (n.throughput) {
            out << ", t=";
            print_expr(out, *n.throughput);
          }
          if (n.dimension) {
            out << ", d=";
            print_expr(out, *n.dimension);
          }
          if (n.complexity) {
            out << ", c=";
            print_expr(out, *n.complexity);
          }
          if (n.synchronicity) {
            out << ", s=" << to_string(*n.synchronicity);
          }
          if (n.direction) {
            out << ", r=" << to_string(*n.direction);
          }
          if (n.user) {
            out << ", u=";
            print_type(out, *n.user);
          }
          out << ")";
        }
      },
      t.node);
}

void print_expr(std::ostream& out, const Expr& e) {
  std::visit(
      [&out](const auto& n) {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, IntLit>) {
          out << n.value;
        } else if constexpr (std::is_same_v<T, FloatLit>) {
          out << support::format_fixed(n.value, 6);
        } else if constexpr (std::is_same_v<T, StringLit>) {
          out << '"';
          for (char c : n.value) {
            if (c == '"' || c == '\\') out << '\\';
            out << c;
          }
          out << '"';
        } else if constexpr (std::is_same_v<T, BoolLit>) {
          out << (n.value ? "true" : "false");
        } else if constexpr (std::is_same_v<T, Ident>) {
          out << n.name;
        } else if constexpr (std::is_same_v<T, Binary>) {
          out << "(";
          print_expr(out, *n.lhs);
          out << " " << to_string(n.op) << " ";
          print_expr(out, *n.rhs);
          out << ")";
        } else if constexpr (std::is_same_v<T, Unary>) {
          out << to_string(n.op) << "(";
          print_expr(out, *n.operand);
          out << ")";
        } else if constexpr (std::is_same_v<T, Call>) {
          out << n.callee << "(";
          for (std::size_t i = 0; i < n.args.size(); ++i) {
            if (i > 0) out << ", ";
            print_expr(out, *n.args[i]);
          }
          out << ")";
        } else if constexpr (std::is_same_v<T, ArrayLit>) {
          out << "[";
          for (std::size_t i = 0; i < n.elems.size(); ++i) {
            if (i > 0) out << ", ";
            print_expr(out, *n.elems[i]);
          }
          out << "]";
        } else if constexpr (std::is_same_v<T, IndexExpr>) {
          print_expr(out, *n.base);
          out << "[";
          print_expr(out, *n.index);
          out << "]";
        }
      },
      e.node);
}

void print_template_arg(std::ostream& out, const TemplateArg& a) {
  switch (a.kind) {
    case TemplateArg::Kind::kExpr:
      print_expr(out, *a.expr);
      break;
    case TemplateArg::Kind::kType:
      out << "type ";
      print_type(out, *a.type);
      break;
    case TemplateArg::Kind::kImpl:
      out << "impl " << a.impl_name;
      break;
  }
}

void print_template_args(std::ostream& out,
                         const std::vector<TemplateArg>& args) {
  if (args.empty()) return;
  out << "<";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out << ", ";
    print_template_arg(out, args[i]);
  }
  out << ">";
}

void print_template_params(std::ostream& out,
                           const std::vector<TemplateParam>& params) {
  if (params.empty()) return;
  out << "<";
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i > 0) out << ", ";
    const TemplateParam& p = params[i];
    out << p.name << ": ";
    if (p.kind == ParamKind::kImpl) {
      out << "impl of " << p.impl_of_streamlet;
      print_template_args(out, p.impl_of_args);
    } else {
      out << to_string(p.kind);
    }
  }
  out << ">";
}

void print_port_ref(std::ostream& out, const PortRef& r) {
  if (r.instance) {
    out << *r.instance;
    if (r.instance_index) {
      out << "[";
      print_expr(out, *r.instance_index);
      out << "]";
    }
    out << ".";
  }
  out << r.port;
  if (r.port_index) {
    out << "[";
    print_expr(out, *r.port_index);
    out << "]";
  }
}

void print_impl_stmts(std::ostream& out, const std::vector<ImplStmt>& stmts,
                      int depth);

void print_indent(std::ostream& out, int depth) {
  for (int i = 0; i < depth; ++i) out << "  ";
}

void print_impl_stmt(std::ostream& out, const ImplStmt& s, int depth) {
  print_indent(out, depth);
  std::visit(
      [&out, depth](const auto& n) {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, InstanceStmt>) {
          out << "instance " << n.name;
          if (n.name_index) {
            out << "[";
            print_expr(out, *n.name_index);
            out << "]";
          }
          out << "(" << n.impl_name;
          print_template_args(out, n.args);
          out << ")";
          if (n.array_size) {
            out << " [";
            print_expr(out, *n.array_size);
            out << "]";
          }
          out << ",\n";
        } else if constexpr (std::is_same_v<T, ConnectStmt>) {
          print_port_ref(out, n.src);
          out << " => ";
          print_port_ref(out, n.dst);
          if (n.structural) out << " @structural";
          out << ",\n";
        } else if constexpr (std::is_same_v<T, ForStmt>) {
          out << "for " << n.var << " in ";
          print_expr(out, *n.iterable);
          out << " {\n";
          print_impl_stmts(out, n.body, depth + 1);
          print_indent(out, depth);
          out << "}\n";
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          out << "if (";
          print_expr(out, *n.cond);
          out << ") {\n";
          print_impl_stmts(out, n.then_body, depth + 1);
          print_indent(out, depth);
          out << "}";
          if (!n.else_body.empty()) {
            out << " else {\n";
            print_impl_stmts(out, n.else_body, depth + 1);
            print_indent(out, depth);
            out << "}";
          }
          out << "\n";
        } else if constexpr (std::is_same_v<T, AssertStmt>) {
          out << "assert(";
          print_expr(out, *n.cond);
          if (!n.message.empty()) out << ", \"" << n.message << "\"";
          out << ");\n";
        } else if constexpr (std::is_same_v<T, LocalConst>) {
          out << "const " << n.name;
          if (n.declared_kind) out << ": " << to_string(*n.declared_kind);
          out << " = ";
          print_expr(out, *n.init);
          out << ";\n";
        }
      },
      s.node);
}

void print_impl_stmts(std::ostream& out, const std::vector<ImplStmt>& stmts,
                      int depth) {
  for (const ImplStmt& s : stmts) print_impl_stmt(out, s, depth);
}

void print_sim_actions(std::ostream& out, const std::vector<SimAction>& acts,
                       int depth);

void print_sim_action(std::ostream& out, const SimAction& a, int depth) {
  print_indent(out, depth);
  std::visit(
      [&out, depth](const auto& n) {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, ActAck>) {
          out << "ack(" << n.port << ");\n";
        } else if constexpr (std::is_same_v<T, ActSend>) {
          out << "send(" << n.port;
          if (n.payload) {
            out << ", ";
            print_expr(out, *n.payload);
          }
          out << ");\n";
        } else if constexpr (std::is_same_v<T, ActDelay>) {
          out << "delay(";
          print_expr(out, *n.cycles);
          out << ");\n";
        } else if constexpr (std::is_same_v<T, ActSet>) {
          out << "set " << n.state_var << " = ";
          print_expr(out, *n.value);
          out << ";\n";
        } else if constexpr (std::is_same_v<T, ActIf>) {
          out << "if (";
          print_expr(out, *n.cond);
          out << ") {\n";
          print_sim_actions(out, n.then_body, depth + 1);
          print_indent(out, depth);
          out << "}";
          if (!n.else_body.empty()) {
            out << " else {\n";
            print_sim_actions(out, n.else_body, depth + 1);
            print_indent(out, depth);
            out << "}";
          }
          out << "\n";
        } else if constexpr (std::is_same_v<T, ActFor>) {
          out << "for " << n.var << " in ";
          print_expr(out, *n.iterable);
          out << " {\n";
          print_sim_actions(out, n.body, depth + 1);
          print_indent(out, depth);
          out << "}\n";
        }
      },
      a.node);
}

void print_sim_actions(std::ostream& out, const std::vector<SimAction>& acts,
                       int depth) {
  for (const SimAction& a : acts) print_sim_action(out, a, depth);
}

void print_sim_block(std::ostream& out, const SimBlock& sim, int depth) {
  print_indent(out, depth);
  out << "sim {\n";
  for (const SimStateDecl& s : sim.states) {
    print_indent(out, depth + 1);
    out << "state " << s.name << " = \"" << s.initial << "\";\n";
  }
  for (const SimHandler& h : sim.handlers) {
    print_indent(out, depth + 1);
    out << "on ";
    if (h.wait_ports.empty()) {
      out << "start";
    } else {
      for (std::size_t i = 0; i < h.wait_ports.size(); ++i) {
        if (i > 0) out << " && ";
        out << h.wait_ports[i] << ".receive";
      }
    }
    out << " {\n";
    print_sim_actions(out, h.actions, depth + 2);
    print_indent(out, depth + 1);
    out << "}\n";
  }
  print_indent(out, depth);
  out << "}\n";
}

void print_decl(std::ostream& out, const Decl& d) {
  std::visit(
      [&out](const auto& n) {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, ConstDecl>) {
          out << "const " << n.name;
          if (n.declared_kind) out << ": " << to_string(*n.declared_kind);
          out << " = ";
          print_expr(out, *n.init);
          out << ";\n";
        } else if constexpr (std::is_same_v<T, TypeAliasDecl>) {
          out << "type " << n.name << " = ";
          print_type(out, *n.type);
          out << ";\n";
        } else if constexpr (std::is_same_v<T, GroupDecl>) {
          out << (n.is_union ? "Union " : "Group ") << n.name << " {\n";
          for (const FieldDecl& f : n.fields) {
            out << "  " << f.name << ": ";
            print_type(out, *f.type);
            out << ",\n";
          }
          out << "}\n";
        } else if constexpr (std::is_same_v<T, StreamletDecl>) {
          out << "streamlet " << n.name;
          print_template_params(out, n.params);
          out << " {\n";
          for (const PortDecl& p : n.ports) {
            out << "  " << p.name << ": ";
            print_type(out, *p.type);
            out << " " << to_string(p.dir);
            if (p.array_size) {
              out << " [";
              print_expr(out, *p.array_size);
              out << "]";
            }
            if (p.clock_domain) out << " @ " << *p.clock_domain;
            out << ",\n";
          }
          out << "}\n";
        } else if constexpr (std::is_same_v<T, ImplDecl>) {
          out << "impl " << n.name;
          print_template_params(out, n.params);
          out << " of " << n.of_streamlet;
          print_template_args(out, n.of_args);
          if (n.external) out << " @ external";
          out << " {\n";
          print_impl_stmts(out, n.body, 1);
          if (n.sim) print_sim_block(out, *n.sim, 1);
          out << "}\n";
        }
      },
      d.node);
}

}  // namespace

std::string to_source(const Expr& e) {
  std::ostringstream out;
  print_expr(out, e);
  return out.str();
}

std::string to_source(const TypeExpr& t) {
  std::ostringstream out;
  print_type(out, t);
  return out.str();
}

std::string to_source(const TemplateArg& arg) {
  std::ostringstream out;
  print_template_arg(out, arg);
  return out.str();
}

std::string to_source(const SourceFile& file) {
  std::ostringstream out;
  if (!file.package.empty()) out << "package " << file.package << ";\n\n";
  for (const Decl& d : file.decls) {
    print_decl(out, d);
    out << "\n";
  }
  return out.str();
}

}  // namespace tydi::lang
