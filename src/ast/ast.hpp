// Abstract syntax tree for Tydi-lang ("code structure #1" in Fig. 3 of the
// paper). Nodes are variant-based value types owned through unique_ptr; the
// tree is immutable after parsing — elaboration produces a separate
// `elab::Design` rather than mutating the AST.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "src/support/intern.hpp"
#include "src/support/source.hpp"

namespace tydi::lang {

using support::Loc;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinaryOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod, kPow,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kRange,  // a -> b and a .. b: half-open integer range [a, b)
};

enum class UnaryOp : std::uint8_t { kNeg, kNot };

[[nodiscard]] std::string_view to_string(BinaryOp op);
[[nodiscard]] std::string_view to_string(UnaryOp op);

struct IntLit { std::int64_t value = 0; };
struct FloatLit { double value = 0.0; };
struct StringLit { std::string value; };
struct BoolLit { bool value = false; };
struct Ident {
  std::string name;
  /// Lazily interned `name`, cached so repeated evaluation of the same AST
  /// node (the simulator re-runs handler expressions per packet) resolves
  /// by integer symbol without re-hashing the string. Atomic because cached
  /// ASTs are shared across the concurrent compiles of a session: two
  /// compiles may race to publish the (identical) interned symbol.
  mutable std::atomic<support::Symbol> sym{support::kNoSymbol};

  Ident() = default;
  Ident(std::string n) : name(std::move(n)) {}  // NOLINT(runtime/explicit)
  Ident(const Ident& o)
      : name(o.name), sym(o.sym.load(std::memory_order_relaxed)) {}
  Ident& operator=(const Ident& o) {
    name = o.name;
    sym.store(o.sym.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
    return *this;
  }
};
struct Binary {
  BinaryOp op{};
  ExprPtr lhs;
  ExprPtr rhs;
};
struct Unary {
  UnaryOp op{};
  ExprPtr operand;
};
struct Call {
  std::string callee;  // builtin math functions: ceil, log2, pow, len, ...
  std::vector<ExprPtr> args;
};
struct ArrayLit { std::vector<ExprPtr> elems; };
struct IndexExpr {
  ExprPtr base;
  ExprPtr index;
};

struct Expr {
  Loc loc;
  std::variant<IntLit, FloatLit, StringLit, BoolLit, Ident, Binary, Unary,
               Call, ArrayLit, IndexExpr>
      node;
};

[[nodiscard]] ExprPtr make_expr(Loc loc,
                                std::variant<IntLit, FloatLit, StringLit,
                                             BoolLit, Ident, Binary, Unary,
                                             Call, ArrayLit, IndexExpr>
                                    node);

/// Deep copy (template bodies are re-elaborated per instantiation).
[[nodiscard]] ExprPtr clone(const Expr& e);

// ---------------------------------------------------------------------------
// Type expressions
// ---------------------------------------------------------------------------

struct TypeExpr;
using TypeExprPtr = std::unique_ptr<TypeExpr>;

/// Stream synchronicity per Tydi-spec.
enum class Synchronicity : std::uint8_t { kSync, kFlatten, kDesync, kFlatDesync };
/// Stream direction per Tydi-spec (Reverse models response channels).
enum class StreamDir : std::uint8_t { kForward, kReverse };

[[nodiscard]] std::string_view to_string(Synchronicity s);
[[nodiscard]] std::string_view to_string(StreamDir d);

struct NullTypeExpr {};
struct BitTypeExpr { ExprPtr width; };
/// Reference to a named Group/Union/type alias or a `type` template param.
struct NamedTypeExpr { std::string name; };
struct StreamTypeExpr {
  TypeExprPtr element;
  ExprPtr throughput;             // optional; default 1.0
  ExprPtr dimension;              // optional; default 0
  ExprPtr complexity;             // optional; default 1 (C1..C8)
  std::optional<Synchronicity> synchronicity;  // default Sync
  std::optional<StreamDir> direction;          // default Forward
  TypeExprPtr user;               // optional user signal type
};

struct TypeExpr {
  Loc loc;
  std::variant<NullTypeExpr, BitTypeExpr, NamedTypeExpr, StreamTypeExpr> node;
};

[[nodiscard]] TypeExprPtr make_type(Loc loc,
                                    std::variant<NullTypeExpr, BitTypeExpr,
                                                 NamedTypeExpr, StreamTypeExpr>
                                        node);
[[nodiscard]] TypeExprPtr clone(const TypeExpr& t);

// ---------------------------------------------------------------------------
// Template parameters and arguments
// ---------------------------------------------------------------------------

/// Kind of a value-level binding: the five variable types of Sec. IV-A plus
/// the two meta kinds (`type`, `impl of <streamlet>`).
enum class ParamKind : std::uint8_t {
  kInt, kFloat, kString, kBool, kClockdomain, kType, kImpl,
};

[[nodiscard]] std::string_view to_string(ParamKind k);

struct TemplateArg;

struct TemplateParam {
  std::string name;
  ParamKind kind = ParamKind::kInt;
  // For kImpl: the streamlet the supplied impl must derive from, e.g.
  // `pu_instance: impl of process_unit_s<type in_t, type out_t>`.
  std::string impl_of_streamlet;
  std::vector<TemplateArg> impl_of_args;
  Loc loc;
};

struct TemplateArg {
  enum class Kind : std::uint8_t { kExpr, kType, kImpl };
  Kind kind = Kind::kExpr;
  ExprPtr expr;          // kExpr
  TypeExprPtr type;      // kType
  std::string impl_name; // kImpl: name of an impl or an impl-typed param
  Loc loc;

  TemplateArg() = default;
  TemplateArg(const TemplateArg& other);
  TemplateArg& operator=(const TemplateArg& other);
  TemplateArg(TemplateArg&&) = default;
  TemplateArg& operator=(TemplateArg&&) = default;
};

// ---------------------------------------------------------------------------
// Hardware declarations
// ---------------------------------------------------------------------------

enum class PortDir : std::uint8_t { kIn, kOut };
[[nodiscard]] std::string_view to_string(PortDir d);

struct PortDecl {
  std::string name;
  TypeExprPtr type;
  PortDir dir = PortDir::kIn;
  ExprPtr array_size;               // optional: port array `name: T in [n]`
  std::optional<std::string> clock_domain;  // optional: `@ clk_name`
  Loc loc;
};

struct StreamletDecl {
  std::string name;
  std::vector<TemplateParam> params;
  std::vector<PortDecl> ports;
  Loc loc;
};

// --- Implementation body statements ---

struct ImplStmt;

struct InstanceStmt {
  std::string name;
  /// Optional explicit index: `instance cmp[i](...)` inside a `for` loop
  /// declares one instance per iteration, named `cmp_<i>` (the paper's
  /// "use the for statement to declare four instances of a comparator
  /// template" pattern, where each instance takes a different argument).
  ExprPtr name_index;
  std::string impl_name;
  std::vector<TemplateArg> args;
  ExprPtr array_size;  // optional: `instance pu(x) [channel]`
  Loc loc;
};

/// One endpoint of a connection: `port`, `port[i]`, `inst.port`,
/// `inst[i].port` or `inst.port[i]`.
struct PortRef {
  std::optional<std::string> instance;
  ExprPtr instance_index;  // optional index on the instance array
  std::string port;
  ExprPtr port_index;      // optional index on a port array
  Loc loc;
};

struct ConnectStmt {
  PortRef src;
  PortRef dst;
  /// `@structural`: relax strict (named) type equality to structural
  /// equality, per Sec. IV-B ("Adding an extra attribute can disable the
  /// strict type equality checking").
  bool structural = false;
  Loc loc;
};

struct ForStmt {
  std::string var;
  ExprPtr iterable;  // array value or range expression
  std::vector<ImplStmt> body;
  Loc loc;
};

struct IfStmt {
  ExprPtr cond;
  std::vector<ImplStmt> then_body;
  std::vector<ImplStmt> else_body;
  Loc loc;
};

struct AssertStmt {
  ExprPtr cond;
  std::string message;  // optional explanatory text
  Loc loc;
};

struct LocalConst {
  std::string name;
  std::optional<ParamKind> declared_kind;  // `const x: int = ...`
  ExprPtr init;
  Loc loc;
};

struct ImplStmt {
  std::variant<InstanceStmt, ConnectStmt, ForStmt, IfStmt, AssertStmt,
               LocalConst>
      node;
};

// --- Simulation syntax (Sec. V-A) ---

struct SimAction;

struct ActAck { std::string port; };
/// `send(port)` resends the triggering payload; `send(port, expr)` sends the
/// evaluated expression as payload.
struct ActSend {
  std::string port;
  ExprPtr payload;  // optional
};
struct ActDelay { ExprPtr cycles; };
struct ActSet {
  std::string state_var;
  ExprPtr value;
};
struct ActIf {
  ExprPtr cond;
  std::vector<SimAction> then_body;
  std::vector<SimAction> else_body;
};

/// `for v in expr { ... }` inside a handler. The iterable must be
/// evaluable from compile-time constants (template parameters and local
/// consts); the body is unrolled with `v` bound per iteration.
struct ActFor {
  std::string var;
  ExprPtr iterable;
  std::vector<SimAction> body;
};

struct SimAction {
  Loc loc;
  std::variant<ActAck, ActSend, ActDelay, ActSet, ActIf, ActFor> node;
};

/// `state name = "initial";`
struct SimStateDecl {
  std::string name;
  std::string initial;
  Loc loc;
};

/// `on a.receive && b.receive { ... }`. An empty port list means the special
/// `start` event fired once at time zero.
struct SimHandler {
  std::vector<std::string> wait_ports;
  std::vector<SimAction> actions;
  Loc loc;
};

struct SimBlock {
  std::vector<SimStateDecl> states;
  std::vector<SimHandler> handlers;
  Loc loc;
};

struct ImplDecl {
  std::string name;
  std::vector<TemplateParam> params;
  std::string of_streamlet;
  std::vector<TemplateArg> of_args;
  bool external = false;
  std::vector<ImplStmt> body;
  std::optional<SimBlock> sim;
  Loc loc;
};

// --- Top-level declarations ---

struct ConstDecl {
  std::string name;
  std::optional<ParamKind> declared_kind;
  ExprPtr init;
  Loc loc;
};

struct TypeAliasDecl {
  std::string name;
  TypeExprPtr type;
  Loc loc;
};

struct FieldDecl {
  std::string name;
  TypeExprPtr type;
  Loc loc;
};

struct GroupDecl {
  std::string name;
  bool is_union = false;  // `Union` shares the syntax of `Group`
  std::vector<FieldDecl> fields;
  Loc loc;
};

struct Decl {
  std::variant<ConstDecl, TypeAliasDecl, GroupDecl, StreamletDecl, ImplDecl>
      node;
};

struct SourceFile {
  std::string package;  // optional `package name;`
  std::vector<Decl> decls;
};

// ---------------------------------------------------------------------------
// Pretty printer — emits parseable Tydi-lang (used by round-trip tests).
// ---------------------------------------------------------------------------

[[nodiscard]] std::string to_source(const Expr& e);
[[nodiscard]] std::string to_source(const TypeExpr& t);
[[nodiscard]] std::string to_source(const SourceFile& file);
[[nodiscard]] std::string to_source(const TemplateArg& arg);

}  // namespace tydi::lang
