// tydi-cpp — umbrella header for the public API.
//
// A C++20 implementation of the Tydi-lang toolchain ("Tydi-lang: A Language
// for Typed Streaming Hardware", SC 2023): compiler frontend, Tydi-IR, VHDL
// backend, standard library, event-driven simulator, testbench generation,
// Fletcher-style interface generation, and the TPC-H evaluation workload.
//
// Typical use:
//
//   #include "src/tydi.hpp"
//
//   tydi::driver::CompileOptions options;
//   options.top = "my_top";
//   auto result = tydi::driver::compile_source(source_text, options);
//   if (result.success()) {
//     write(result.ir_text);    // Tydi-IR
//     write(result.vhdl_text);  // generated VHDL
//   }
//
// Simulation:
//
//   tydi::support::DiagnosticEngine diags;
//   tydi::sim::Engine engine(result.design, diags);
//   tydi::sim::SimOptions sim_options;  // stimuli, clock periods, ...
//   tydi::sim::SimResult sim = engine.run(sim_options);
//   report(sim.summary());
#pragma once

#include "src/ast/ast.hpp"
#include "src/drc/drc.hpp"
#include "src/driver/compiler.hpp"
#include "src/elab/design.hpp"
#include "src/elab/elaborator.hpp"
#include "src/eval/interp.hpp"
#include "src/eval/scope.hpp"
#include "src/eval/value.hpp"
#include "src/fletcher/fletchgen.hpp"
#include "src/fletcher/schema.hpp"
#include "src/ir/ir.hpp"
#include "src/lexer/lexer.hpp"
#include "src/parser/parser.hpp"
#include "src/sim/behavior.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/metrics.hpp"
#include "src/stdlib/stdlib.hpp"
#include "src/sugar/sugar.hpp"
#include "src/support/diagnostic.hpp"
#include "src/support/source.hpp"
#include "src/support/text.hpp"
#include "src/tb/testbench.hpp"
#include "src/tpch/tpch.hpp"
#include "src/types/compat.hpp"
#include "src/types/logical_type.hpp"
#include "src/types/physical.hpp"
#include "src/vhdl/rtl_lib.hpp"
#include "src/vhdl/vhdl.hpp"
