// Crash-safe append-only journal framing — the durability primitive under
// the tydid compile journal (src/service/warmup.hpp).
//
// A journal file is a fixed 8-byte magic header followed by CRC32C-framed
// records:
//
//   file   := "TYDJRNL1" record*
//   record := u32le payload_len | u32le crc32c(payload) | payload bytes
//
// The format is designed around one invariant: *whatever bytes survive a
// crash, recovery never fails and never invents data*. `recover_journal`
// scans forward and keeps the longest prefix of records that frame and
// checksum correctly; the first byte that does not (torn tail from a crash
// mid-append, a flipped bit from failing media, a garbage length field) ends
// the scan. The caller then truncates to the valid prefix
// (`truncate_journal`) and appends from there. A file whose header is
// unreadable recovers to zero records — a cold start, never a refusal to
// boot and never UB (every length is bounds-checked before it is trusted,
// mirroring the hardened TYTR reader).
//
// Atomic snapshots (`write_snapshot_atomic`) are the compaction half: the
// replacement journal is written to `<path>.tmp`, fsync'd, renamed over the
// live file, and the parent directory fsync'd — a crash at any instant
// leaves either the complete old journal or the complete new one, never a
// half-written hybrid.
//
// Fault injection: `IoFaultPlan` extends the PR 6 deterministic seed-driven
// idiom (counter-based splitmix64 of (seed, site, step) — stateless,
// thread-free, reproducible) to the I/O path. Injectable faults: torn
// appends (crash mid-write), silent single-bit flips, ENOSPC partial
// writes, and crash-mid-snapshot / crash-before-rename. The journal tests
// drive every recovery rule through these faults the same way the shard
// runtime drives its protocol through sim::FaultPlan.
//
// Thread-safety: a JournalWriter is externally synchronized (the compile
// journal holds one mutex across append/compact); the free functions are
// pure I/O.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/status.hpp"

namespace tydi::support {

/// CRC32C (Castagnoli, polynomial 0x1EDC6F41 reflected) over `data`.
/// Software table implementation; the standard check value
/// crc32c("123456789") == 0xE3069283 is unit-tested.
[[nodiscard]] std::uint32_t crc32c(std::string_view data);

/// The journal file magic ("TYDJRNL1", 8 bytes).
inline constexpr char kJournalMagic[8] = {'T', 'Y', 'D', 'J',
                                          'R', 'N', 'L', '1'};
inline constexpr std::size_t kJournalHeaderBytes = sizeof(kJournalMagic);
/// Per-record frame header: u32le payload length + u32le payload CRC32C.
inline constexpr std::size_t kRecordHeaderBytes = 8;
/// Sanity bound on a single record. A length field above this is treated as
/// corruption (it almost certainly is — compile keys are tiny), which stops
/// a flipped high bit from making recovery attempt a 4 GiB allocation.
inline constexpr std::size_t kMaxRecordBytes = 16u << 20;

/// Deterministic I/O fault plan (PR 6 idiom, extended to the write path).
/// All probabilistic sites hash (seed, site, step) — same plan, same fault
/// schedule, regardless of thread or call timing.
struct IoFaultPlan {
  /// Master seed; 0 disables the probabilistic sites below.
  std::uint64_t seed = 0;
  /// Probability [0,1] that an append is torn: a seed-derived prefix of the
  /// frame is written, then the writer behaves as if the process died
  /// (every later operation fails kIoError). Recovery must truncate the
  /// torn tail.
  double torn_append_p = 0.0;
  /// Probability [0,1] that one seed-derived bit of an appended frame is
  /// flipped on its way to disk. The append *succeeds* — silent media
  /// corruption — and recovery must drop the flipped record and everything
  /// after it.
  double bit_flip_p = 0.0;
  /// Probability [0,1] that an append hits ENOSPC after a partial write.
  /// The writer repairs the torn tail (ftruncate back to the last good
  /// offset) and stays usable — a full disk must not corrupt the journal.
  double enospc_p = 0.0;
  /// One-shot snapshot faults: die after writing roughly half the temp
  /// file, or after the temp file is complete + fsync'd but before the
  /// rename. Either way the previous journal must survive intact.
  bool crash_mid_snapshot = false;
  bool crash_before_rename = false;

  [[nodiscard]] bool enabled() const {
    return seed != 0 || crash_mid_snapshot || crash_before_rename;
  }

  /// A mixed plan deriving every probability from one seed in [0.05, 0.4]
  /// — the shape the seeded fault-sweep tests use.
  [[nodiscard]] static IoFaultPlan from_seed(std::uint64_t seed);
};

/// Stateless fault oracle for the write path (counter-based splitmix64 of
/// (seed, site, step), one monotonic step counter per site).
class IoFaultInjector {
 public:
  enum class Site : std::uint32_t {
    kTornAppend = 1,
    kBitFlip = 2,
    kEnospc = 3,
  };

  explicit IoFaultInjector(const IoFaultPlan& plan) : plan_(plan) {}

  /// True when the fault at `site` fires for this step (each site keeps its
  /// own monotonic step counter).
  [[nodiscard]] bool fires(Site site);
  /// Seed-derived value in [0, bound) for the firing site's current step —
  /// picks the torn-write length / flipped bit deterministically.
  [[nodiscard]] std::uint64_t pick(Site site, std::uint64_t bound) const;

  [[nodiscard]] const IoFaultPlan& plan() const { return plan_; }

 private:
  IoFaultPlan plan_;
  std::uint64_t steps_[4] = {0, 0, 0, 0};
};

/// What `recover_journal` found on disk.
struct RecoveredJournal {
  /// Record payloads of the longest valid prefix, in append order.
  std::vector<std::string> records;
  /// Byte offset just past the last valid record (== the size a repaired
  /// journal should be truncated to). At least kJournalHeaderBytes for a
  /// readable journal; 0 for a missing/unreadable/not-a-journal file.
  std::uint64_t valid_bytes = 0;
  /// Total bytes present on disk when scanned.
  std::uint64_t total_bytes = 0;
  /// True when bytes past the valid prefix were dropped (torn tail or
  /// corruption). The caller should truncate and log — this is the
  /// kCorruptData-class event of a journal boot, but never a boot failure.
  [[nodiscard]] bool dropped_tail() const { return valid_bytes < total_bytes; }
  [[nodiscard]] std::uint64_t dropped_bytes() const {
    return total_bytes - valid_bytes;
  }
};

/// Scans `path` into `out`. A missing file recovers to zero records and
/// kOk (first boot); an unreadable file returns kIoError; any readable
/// byte sequence — including garbage, a bad magic, torn or bit-flipped
/// records — recovers the longest valid prefix and returns kOk with
/// `dropped_tail()` saying whether anything was lost. Never throws, never
/// trusts an unvalidated length.
[[nodiscard]] Status recover_journal(const std::string& path,
                                     RecoveredJournal& out);

/// Truncates `path` to `valid_bytes` (recovery repair). When `valid_bytes`
/// is below the header size the file is rewritten as a fresh empty journal
/// (header only) — the cold-start path for corrupt-beyond-salvage files.
[[nodiscard]] Status truncate_journal(const std::string& path,
                                      std::uint64_t valid_bytes);

/// Writes a complete journal (header + `records`) to `path` atomically:
/// temp file + fsync + rename + parent-directory fsync. On any failure the
/// previous file at `path` is untouched and the temp file is removed (best
/// effort). `injector` (optional) drives the snapshot crash faults.
[[nodiscard]] Status write_snapshot_atomic(
    const std::string& path, const std::vector<std::string>& records,
    IoFaultInjector* injector = nullptr);

/// Append-only journal writer. `open` validates/creates the header and
/// positions at the end — run `recover_journal` + `truncate_journal` first
/// so a torn tail from the previous process is repaired before new appends
/// land after it.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter() { close(); }
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  [[nodiscard]] Status open(const std::string& path);
  /// Appends one framed record and fsyncs. On a partial write the torn
  /// tail is repaired (ftruncate to the pre-append offset) so the journal
  /// stays valid; a simulated crash fault leaves the tear in place and
  /// fails every later call (the tests recover it like a real crash).
  [[nodiscard]] Status append(std::string_view payload);
  /// Bytes currently in the journal (header + valid records).
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  void close();

  /// Installs the fault plan driving this writer's injected failures
  /// (tests only; default: no faults).
  void set_fault_plan(const IoFaultPlan& plan);

 private:
  int fd_ = -1;
  std::string path_;
  std::uint64_t bytes_ = 0;
  /// Simulated process death: set by a torn-append fault; every later
  /// operation fails kIoError without touching the file.
  bool crashed_ = false;
  IoFaultInjector injector_{IoFaultPlan{}};
};

}  // namespace tydi::support
