// Structured error taxonomy shared by the driver, the simulator runtime and
// the CLI.
//
// The DiagnosticEngine collects *human-readable* findings; `Status` is the
// *machine-readable* classification layered on top: which pipeline phase
// failed and which failure class it belongs to. Library entry points return
// (or expose) a Status so embedding services can dispatch on the code — skip
// a bad batch job, retry an I/O error, page on an internal bug — and `tydic`
// maps each class to a distinct process exit code, so scripts and CI can
// tell "the source didn't parse" from "the simulation hung and was aborted
// by the watchdog" without scraping stderr.
#pragma once

#include <string>
#include <string_view>

namespace tydi::support {

/// Failure classes, ordered roughly by pipeline position. Each class maps to
/// a stable, distinct process exit code (see `exit_code`).
enum class StatusCode : std::uint8_t {
  kOk = 0,
  /// Caller error: malformed options, unusable arguments.
  kInvalidArgument,
  /// The host environment failed us: unreadable/unwritable files.
  kIoError,
  /// An input artifact (manifest line, TYTR trace) is malformed or corrupt.
  kCorruptData,
  /// Source failed to lex/parse.
  kParseError,
  /// Elaboration (evaluation + code expansion) failed.
  kElabError,
  /// Design rule check reported violations.
  kDrcError,
  /// Backend emission (IR text / VHDL) failed.
  kEmitError,
  /// Simulation ended in deadlock (a wait-for cycle, not a runtime bug).
  kDeadlock,
  /// The run was aborted: watchdog no-progress detection or an exceeded
  /// event / wall-clock / RSS budget. Partial results may exist.
  kAborted,
  /// Invariant violation inside this compiler — always a bug.
  kInternal,
  /// The service is overloaded or draining and shed this request without
  /// executing it (admission control, queue full, deadline expired before a
  /// worker picked it up). Always safe to retry after a backoff — shed
  /// responses carry a retry-after-ms hint on the wire.
  kUnavailable,
};

/// One past the last StatusCode value (for exhaustive iteration).
inline constexpr int kNumStatusCodes =
    static_cast<int>(StatusCode::kUnavailable) + 1;

[[nodiscard]] std::string_view to_string(StatusCode code);

/// Stable process exit code for a failure class (0 for kOk). Distinct per
/// class so callers can dispatch without parsing diagnostics.
[[nodiscard]] int exit_code(StatusCode code);

/// Inverse of exit_code: the StatusCode whose stable exit code is `exit`
/// (kInternal for unknown codes — an unclassifiable remote failure).
[[nodiscard]] StatusCode status_code_for_exit(int exit);

/// A failure classification: code + the pipeline phase that produced it
/// ("parse", "elaborate", "sim", "manifest", ...) + a one-line message.
/// Statuses are cheap value types; the ok() singleton carries no strings.
class [[nodiscard]] Status {
 public:
  Status() = default;

  [[nodiscard]] static Status ok() { return Status(); }
  [[nodiscard]] static Status error(StatusCode code, std::string phase,
                                    std::string message) {
    Status s;
    s.code_ = code;
    s.phase_ = std::move(phase);
    s.message_ = std::move(message);
    return s;
  }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] explicit operator bool() const { return is_ok(); }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& phase() const { return phase_; }
  [[nodiscard]] const std::string& message() const { return message_; }
  [[nodiscard]] int exit_code() const { return support::exit_code(code_); }

  /// "[phase] class: message" ("ok" for the success status).
  [[nodiscard]] std::string render() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string phase_;
  std::string message_;
};

}  // namespace tydi::support
