#include "src/support/intern.hpp"

#include <mutex>

namespace tydi::support {

Symbol Interner::intern(std::string_view s) {
  {
    std::shared_lock lock(mu_);
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  // Re-check: another thread may have inserted between the locks.
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  Symbol sym = static_cast<Symbol>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(std::string_view(strings_.back()), sym);
  return sym;
}

Symbol Interner::find(std::string_view s) const {
  std::shared_lock lock(mu_);
  auto it = index_.find(s);
  return it != index_.end() ? it->second : kNoSymbol;
}

Interner& Interner::global() {
  static Interner interner;
  return interner;
}

Symbol intern(std::string_view s) { return Interner::global().intern(s); }

const std::string& symbol_name(Symbol sym) {
  return Interner::global().str(sym);
}

}  // namespace tydi::support
