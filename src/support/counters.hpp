// Copyable relaxed atomic counters for stats structs that are shared
// across concurrent compiles.
//
// The compile stack reports cache behaviour through small value structs
// (elab::InstantiationStats, elab::MemoStats) that are incremented on hot
// paths, aggregated with `+=`, and copied into results. With the template
// memo and the session caches now serving concurrent compiles, those
// counters are bumped from many threads at once; `RelaxedCounter` keeps the
// value-struct ergonomics (copy, `++`, `+=`, implicit read) while making
// every access a relaxed atomic so parallel compiles stay TSan-clean.
//
// Relaxed ordering is deliberate: the counters are monotonic telemetry, not
// synchronization points — readers only ever want an approximate snapshot.
#pragma once

#include <atomic>
#include <cstdint>

namespace tydi::support {

/// A std::atomic<uint64_t> that copies by value (relaxed load/store), so
/// structs of counters stay copyable and assignable like plain integers.
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(std::uint64_t v) : value_(v) {}  // NOLINT(runtime/explicit)
  RelaxedCounter(const RelaxedCounter& o) : value_(o.get()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    value_.store(o.get(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(std::uint64_t v) {
    value_.store(v, std::memory_order_relaxed);
    return *this;
  }

  /// Implicit read so counters drop into arithmetic and stream output.
  operator std::uint64_t() const { return get(); }  // NOLINT
  [[nodiscard]] std::uint64_t get() const {
    return value_.load(std::memory_order_relaxed);
  }

  RelaxedCounter& operator++() {
    value_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator+=(std::uint64_t n) {
    value_.fetch_add(n, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

}  // namespace tydi::support
