#include "src/support/retry.hpp"

#include <algorithm>

namespace tydi::support {

namespace {

/// Stateless splitmix64 step (same construction as the sim fault
/// injector's schedule hash: counter-based, so no RNG state to carry).
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double retry_jitter(std::uint64_t seed, int attempt) {
  const std::uint64_t h =
      splitmix64(seed ^ splitmix64(static_cast<std::uint64_t>(attempt)));
  // Top 53 bits -> [0, 1), squeezed into [0.5, 1.0) so the backoff never
  // collapses below half its nominal value.
  const double unit =
      static_cast<double>(h >> 11) / 9007199254740992.0;  // 2^53
  return 0.5 + unit / 2.0;
}

bool Retry::next_delay_ms(double server_hint_ms, double& delay_ms) {
  ++attempts_;
  const int budget = std::max(1, policy_.max_attempts);
  if (attempts_ >= budget) return false;
  double backoff = policy_.base_ms;
  for (int i = 1; i < attempts_; ++i) backoff *= policy_.multiplier;
  backoff = std::min(backoff, policy_.max_backoff_ms);
  backoff *= retry_jitter(policy_.seed, attempts_);
  delay_ms = std::max(backoff, server_hint_ms);
  return true;
}

}  // namespace tydi::support
