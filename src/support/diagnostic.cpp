#include "src/support/diagnostic.hpp"

#include <sstream>

namespace tydi::support {

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

void DiagnosticEngine::report(Severity sev, std::string phase,
                              std::string message, Loc loc) {
  std::lock_guard lock(mu_);
  if (sev == Severity::kError) ++error_count_;
  if (sev == Severity::kWarning) ++warning_count_;
  diags_.push_back(Diagnostic{sev, std::move(phase), std::move(message), loc});
}

void DiagnosticEngine::error(std::string phase, std::string message, Loc loc) {
  report(Severity::kError, std::move(phase), std::move(message), loc);
}

void DiagnosticEngine::warning(std::string phase, std::string message,
                               Loc loc) {
  report(Severity::kWarning, std::move(phase), std::move(message), loc);
}

void DiagnosticEngine::note(std::string phase, std::string message, Loc loc) {
  report(Severity::kNote, std::move(phase), std::move(message), loc);
}

std::string DiagnosticEngine::render() const {
  std::ostringstream out;
  std::lock_guard lock(mu_);
  for (const Diagnostic& d : diags_) {
    out << to_string(d.severity) << ": ";
    if (sm_ != nullptr) {
      out << sm_->describe(d.loc) << ": ";
    }
    out << "[" << d.phase << "] " << d.message << "\n";
  }
  return out.str();
}

std::vector<Diagnostic> DiagnosticEngine::by_phase(
    std::string_view phase) const {
  std::vector<Diagnostic> out;
  std::lock_guard lock(mu_);
  for (const Diagnostic& d : diags_) {
    if (d.phase == phase) out.push_back(d);
  }
  return out;
}

void DiagnosticEngine::clear() {
  std::lock_guard lock(mu_);
  diags_.clear();
  error_count_ = 0;
  warning_count_ = 0;
}

}  // namespace tydi::support
