// Text utilities used across the toolchain: an indenting code writer for the
// IR/VHDL emitters, a LoC counter matching the paper's counting rules, and a
// plain-text table renderer for the bench harnesses.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace tydi::support {

/// Streaming code writer with indentation management. Both the Tydi-IR and
/// the VHDL emitters build their output through this class so generated code
/// is consistently formatted (and therefore LoC counts are deterministic).
class CodeWriter {
 public:
  explicit CodeWriter(std::string indent_unit = "  ")
      : indent_unit_(std::move(indent_unit)) {}

  /// Writes one full line at the current indentation. Empty argument writes a
  /// blank line (with no trailing spaces).
  void line(std::string_view text = {});

  /// Writes a line and increases the indent (e.g. "begin").
  void open(std::string_view text);

  /// Decreases the indent and writes a line (e.g. "end;").
  void close(std::string_view text);

  void indent() { ++depth_; }
  void dedent();

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }
  [[nodiscard]] int depth() const { return depth_; }

 private:
  std::string out_;
  std::string indent_unit_;
  int depth_ = 0;
};

/// Counts non-empty, non-comment-only lines — the LoC rule used for Table IV.
/// `comment_prefixes` lists line-comment introducers ("//" for Tydi-lang,
/// "--" for VHDL). Block comments /* */ are stripped first.
[[nodiscard]] std::size_t count_loc(
    std::string_view text,
    const std::vector<std::string_view>& comment_prefixes);

/// LoC for Tydi-lang sources (strips // and /* */ comments).
[[nodiscard]] std::size_t count_tydi_loc(std::string_view text);

/// LoC for VHDL sources (strips -- comments).
[[nodiscard]] std::size_t count_vhdl_loc(std::string_view text);

/// Renders rows as an aligned plain-text table with a header rule, e.g.
///
///   Query     LoC   Ratio
///   -----     ---   -----
///   TPC-H 1   284   26.57
class TextTable {
 public:
  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` places (used by the bench tables).
[[nodiscard]] std::string format_fixed(double value, int digits);

/// True if `text` starts with `prefix` after skipping spaces/tabs.
[[nodiscard]] bool starts_with_trimmed(std::string_view text,
                                       std::string_view prefix);

/// Splits on '\n' (keeps empty segments, drops the trailing empty one).
[[nodiscard]] std::vector<std::string_view> split_lines(std::string_view text);

/// Joins `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Sanitizes an arbitrary mangled name into a VHDL-safe identifier:
/// lowercases, maps non-alphanumerics to '_', collapses runs of '_'.
[[nodiscard]] std::string sanitize_identifier(std::string_view name);

}  // namespace tydi::support
