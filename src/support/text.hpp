// Text utilities used across the toolchain: a rope-backed indenting code
// writer for the IR/VHDL emitters, a LoC counter matching the paper's
// counting rules, and a plain-text table renderer for the bench harnesses.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tydi::support {

/// Streaming code writer with indentation management. Both the Tydi-IR and
/// the VHDL emitters build their output through this class so generated code
/// is consistently formatted (and therefore LoC counts are deterministic).
///
/// Storage is a rope: a vector of fixed-capacity `std::string` chunks, each
/// reserved once. Appending never re-copies previously written text (no
/// single-buffer doubling), and `take()` concatenates into an
/// exactly-reserved string in one pass. `line()` accepts any number of
/// `string_view`-convertible pieces, which are copied straight into the
/// current chunk — a multi-piece line allocates no intermediate temporaries,
/// and the indent prefix is served from a shared grow-only cache.
class CodeWriter {
 public:
  /// Steady-state bytes reserved per rope chunk. Multi-MB outputs allocate
  /// `~total / kChunkBytes` chunks instead of log2(total) doubling copies.
  static constexpr std::size_t kChunkBytes = std::size_t{1} << 16;
  /// First chunk of a writer (ramping up 8x per chunk to kChunkBytes), so
  /// the many small sub-writers — cached component declarations, RTL
  /// bodies — do not each pin a full 64 KiB chunk.
  static constexpr std::size_t kFirstChunkBytes = std::size_t{1} << 10;

  explicit CodeWriter(std::string indent_unit = "  ", int depth = 0)
      : indent_unit_(std::move(indent_unit)), depth_(depth < 0 ? 0 : depth) {}

  /// Writes one full line at the current indentation: indent prefix, every
  /// piece in order, newline. No arguments (or all-empty pieces) writes a
  /// blank line with no trailing spaces.
  template <typename... Parts>
  void line(const Parts&... parts) {
    const std::array<std::string_view, sizeof...(Parts)> views{
        std::string_view(parts)...};
    std::size_t len = 0;
    for (std::string_view v : views) len += v.size();
    if (len > 0) {
      put_indent();
      for (std::string_view v : views) put(v);
    }
    put("\n");
  }
  void line() { put("\n"); }

  /// Writes a line and increases the indent (e.g. "begin").
  template <typename... Parts>
  void open(const Parts&... parts) {
    line(parts...);
    indent();
  }

  /// Decreases the indent and writes a line (e.g. "end;").
  template <typename... Parts>
  void close(const Parts&... parts) {
    dedent();
    line(parts...);
  }

  /// Raw append: no indent, no newline. Use for splicing pre-formatted text.
  void write(std::string_view text) { put(text); }

  void indent() { ++depth_; }
  void dedent() {
    if (depth_ > 0) --depth_;
  }

  /// Splices another writer's buffer onto this one by moving its chunks
  /// (no byte copying). `other` is left empty; its indent state is ignored.
  void append(CodeWriter&& other);

  [[nodiscard]] std::size_t bytes() const { return total_; }
  [[nodiscard]] bool empty() const { return total_ == 0; }
  [[nodiscard]] int depth() const { return depth_; }

  /// Concatenated copy of the buffer (chunks stay in place).
  [[nodiscard]] std::string str() const;
  /// Concatenates into one exactly-reserved string and clears the writer.
  [[nodiscard]] std::string take();

  /// Chunk allocations performed by this writer (including spliced-in
  /// chunks) — the writer's whole allocation story apart from the final
  /// `take()` string.
  [[nodiscard]] std::size_t chunk_allocs() const { return chunk_allocs_; }

  /// Process-wide chunk-allocation counter across all writers; the compile
  /// bench reads deltas of this to report emission allocation counts.
  [[nodiscard]] static std::uint64_t process_chunk_allocs();

 private:
  /// Hot path: the piece fits in the current chunk (inline); anything else
  /// (first write, chunk rollover, oversized piece) goes out of line.
  /// Chunks fill to their reserved capacity, never beyond — appends inside
  /// capacity cannot reallocate, so chunk addresses stay stable.
  void put(std::string_view text) {
    total_ += text.size();
    if (!chunks_.empty()) {
      std::string& back = chunks_.back();
      if (back.size() + text.size() <= back.capacity()) {
        back.append(text.data(), text.size());
        return;
      }
    }
    put_slow(text);
  }
  void put_indent() {
    if (depth_ <= 0) return;
    const std::size_t want =
        static_cast<std::size_t>(depth_) * indent_unit_.size();
    if (want > indent_cache_.size()) grow_indent_cache(want);
    put(std::string_view(indent_cache_.data(), want));
  }
  void put_slow(std::string_view text);
  void grow_indent_cache(std::size_t want);
  void new_chunk();

  std::vector<std::string> chunks_;
  std::size_t total_ = 0;
  std::size_t chunk_allocs_ = 0;
  std::size_t next_chunk_bytes_ = kFirstChunkBytes;
  std::string indent_unit_;
  /// `indent_unit_` repeated at least `depth_` times (grow-only, shared by
  /// every line — indent prefixes never build temporaries).
  std::string indent_cache_;
  int depth_ = 0;
};

/// Counts non-empty, non-comment-only lines — the LoC rule used for Table IV.
/// `comment_prefixes` lists line-comment introducers ("//" for Tydi-lang,
/// "--" for VHDL). Block comments /* */ are stripped first.
[[nodiscard]] std::size_t count_loc(
    std::string_view text,
    const std::vector<std::string_view>& comment_prefixes);

/// LoC for Tydi-lang sources (strips // and /* */ comments).
[[nodiscard]] std::size_t count_tydi_loc(std::string_view text);

/// LoC for VHDL sources (strips -- comments).
[[nodiscard]] std::size_t count_vhdl_loc(std::string_view text);

/// Renders rows as an aligned plain-text table with a header rule, e.g.
///
///   Query     LoC   Ratio
///   -----     ---   -----
///   TPC-H 1   284   26.57
class TextTable {
 public:
  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` places (used by the bench tables).
[[nodiscard]] std::string format_fixed(double value, int digits);

/// True if `text` starts with `prefix` after skipping spaces/tabs.
[[nodiscard]] bool starts_with_trimmed(std::string_view text,
                                       std::string_view prefix);

/// Splits on '\n' (keeps empty segments, drops the trailing empty one).
[[nodiscard]] std::vector<std::string_view> split_lines(std::string_view text);

/// Joins `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Sanitizes an arbitrary mangled name into a VHDL-safe identifier:
/// lowercases, maps non-alphanumerics to '_', collapses runs of '_'.
[[nodiscard]] std::string sanitize_identifier(std::string_view name);

}  // namespace tydi::support
