// Diagnostic engine shared by every compiler phase.
//
// Phases report problems through a DiagnosticEngine rather than throwing, so
// a single run can collect all lexing/parsing/type/DRC errors at once, the
// way the paper's DRC produces a report (Fig. 3, "DRC report").
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/source.hpp"

namespace tydi::support {

enum class Severity {
  kNote,
  kWarning,
  kError,
};

[[nodiscard]] std::string_view to_string(Severity s);

/// A single finding, tagged with the phase that produced it (e.g. "parser",
/// "drc") so reports can be filtered per stage.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string phase;
  std::string message;
  Loc loc;
};

/// Collects diagnostics for a compilation. Cheap to pass by reference through
/// all phases; rendering is deferred until a report is requested.
///
/// Reporting is thread-safe (the sharded simulator's behaviours may warn
/// from worker threads); the counters are atomics so has_errors() stays a
/// lock-free read. The reference returned by diagnostics() must not be held
/// across concurrent report() calls.
class DiagnosticEngine {
 public:
  explicit DiagnosticEngine(const SourceManager* sm = nullptr) : sm_(sm) {}

  void report(Severity sev, std::string phase, std::string message, Loc loc);
  void error(std::string phase, std::string message, Loc loc = {});
  void warning(std::string phase, std::string message, Loc loc = {});
  void note(std::string phase, std::string message, Loc loc = {});

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] std::size_t warning_count() const { return warning_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }

  /// Renders every diagnostic as "severity: file:line:col: [phase] message".
  [[nodiscard]] std::string render() const;

  /// Diagnostics whose phase matches `phase`, in report order.
  [[nodiscard]] std::vector<Diagnostic> by_phase(std::string_view phase) const;

  void clear();

 private:
  const SourceManager* sm_;
  mutable std::mutex mu_;
  std::vector<Diagnostic> diags_;
  std::atomic<std::size_t> error_count_ = 0;
  std::atomic<std::size_t> warning_count_ = 0;
};

}  // namespace tydi::support
