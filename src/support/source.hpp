// Source management: files, buffers and source locations.
//
// Every token and AST node carries a `Loc` so diagnostics can point at the
// offending Tydi-lang source. A `SourceManager` owns all loaded buffers for
// the lifetime of a compilation, so `Loc` can stay a small value type
// (file id + offset) without lifetime headaches.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tydi::support {

/// Identifies a buffer registered with a SourceManager. Id 0 is reserved for
/// "unknown" (synthesized nodes such as sugared duplicators).
struct FileId {
  std::uint32_t value = 0;

  [[nodiscard]] bool valid() const { return value != 0; }
  friend bool operator==(FileId, FileId) = default;
};

/// A position inside a registered buffer, stored as a byte offset. Line and
/// column are computed lazily by the SourceManager (offsets are cheap to
/// carry around; line tables are only needed when a diagnostic fires).
struct Loc {
  FileId file{};
  std::uint32_t offset = 0;

  [[nodiscard]] bool valid() const { return file.valid(); }
  friend bool operator==(Loc, Loc) = default;

  /// Location for synthesized constructs with no source text.
  static Loc synthesized() { return Loc{}; }
};

/// Human-readable expansion of a Loc: 1-based line and column plus file name.
struct LineCol {
  std::string_view file_name;
  std::uint32_t line = 0;    ///< 1-based; 0 when the Loc is synthesized.
  std::uint32_t column = 0;  ///< 1-based; 0 when the Loc is synthesized.
};

/// Owns source buffers and maps Locs back to line/column. Buffers are never
/// removed, so string_views into them remain valid for the manager lifetime.
class SourceManager {
 public:
  /// Registers `text` under `name` and returns its id. The text is copied.
  FileId add(std::string name, std::string text);

  /// Loads a file from disk; returns an invalid FileId if it cannot be read.
  FileId add_file(const std::string& path);

  [[nodiscard]] std::string_view text(FileId id) const;
  [[nodiscard]] std::string_view name(FileId id) const;

  /// Expands a Loc to line/column. Synthesized Locs yield {"<synthesized>",0,0}.
  [[nodiscard]] LineCol line_col(Loc loc) const;

  /// Renders "file:line:col" (or "<synthesized>") for diagnostics.
  [[nodiscard]] std::string describe(Loc loc) const;

  [[nodiscard]] std::size_t file_count() const { return files_.size(); }

 private:
  struct File {
    std::string name;
    std::string text;
    /// Byte offset of each line start; built lazily on the first
    /// line_col() for this file (diagnostic rendering is single-threaded).
    mutable std::vector<std::uint32_t> line_starts;
  };
  std::vector<File> files_;

  [[nodiscard]] const File* get(FileId id) const;
};

}  // namespace tydi::support
