#include "src/support/source.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace tydi::support {

FileId SourceManager::add(std::string name, std::string text) {
  File f;
  f.name = std::move(name);
  f.text = std::move(text);
  // The line table is built lazily by line_col(): registration is on the
  // compile hot path, line/column expansion only happens when a diagnostic
  // actually renders.
  files_.push_back(std::move(f));
  return FileId{static_cast<std::uint32_t>(files_.size())};
}

FileId SourceManager::add_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return FileId{};
  std::ostringstream ss;
  ss << in.rdbuf();
  return add(path, ss.str());
}

const SourceManager::File* SourceManager::get(FileId id) const {
  if (!id.valid() || id.value > files_.size()) return nullptr;
  return &files_[id.value - 1];
}

std::string_view SourceManager::text(FileId id) const {
  const File* f = get(id);
  return f ? std::string_view(f->text) : std::string_view{};
}

std::string_view SourceManager::name(FileId id) const {
  const File* f = get(id);
  return f ? std::string_view(f->name) : std::string_view{};
}

LineCol SourceManager::line_col(Loc loc) const {
  const File* f = get(loc.file);
  if (f == nullptr) return LineCol{"<synthesized>", 0, 0};
  if (f->line_starts.empty()) {
    f->line_starts.push_back(0);
    for (std::uint32_t i = 0; i < f->text.size(); ++i) {
      if (f->text[i] == '\n') f->line_starts.push_back(i + 1);
    }
  }
  // Find the last line start <= offset.
  auto it = std::upper_bound(f->line_starts.begin(), f->line_starts.end(),
                             loc.offset);
  auto line_index = static_cast<std::uint32_t>(it - f->line_starts.begin());
  std::uint32_t line_start = f->line_starts[line_index - 1];
  return LineCol{f->name, line_index, loc.offset - line_start + 1};
}

std::string SourceManager::describe(Loc loc) const {
  LineCol lc = line_col(loc);
  if (lc.line == 0) return "<synthesized>";
  return std::string(lc.file_name) + ":" + std::to_string(lc.line) + ":" +
         std::to_string(lc.column);
}

}  // namespace tydi::support
