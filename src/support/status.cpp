#include "src/support/status.hpp"

namespace tydi::support {

std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kIoError: return "io-error";
    case StatusCode::kCorruptData: return "corrupt-data";
    case StatusCode::kParseError: return "parse-error";
    case StatusCode::kElabError: return "elab-error";
    case StatusCode::kDrcError: return "drc-error";
    case StatusCode::kEmitError: return "emit-error";
    case StatusCode::kDeadlock: return "deadlock";
    case StatusCode::kAborted: return "aborted";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kUnavailable: return "unavailable";
  }
  return "unknown";
}

int exit_code(StatusCode code) {
  // Stable contract: documented in tydic --help and relied on by CI
  // scripts. 1 is reserved for legacy/unclassified failure, 2 for usage
  // errors (the CLI's own convention).
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument: return 2;
    case StatusCode::kIoError: return 3;
    case StatusCode::kCorruptData: return 4;
    case StatusCode::kParseError: return 5;
    case StatusCode::kElabError: return 6;
    case StatusCode::kDrcError: return 7;
    case StatusCode::kEmitError: return 8;
    case StatusCode::kDeadlock: return 9;
    case StatusCode::kAborted: return 10;
    case StatusCode::kInternal: return 11;
    case StatusCode::kUnavailable: return 12;
  }
  return 1;
}

StatusCode status_code_for_exit(int exit) {
  for (int c = 0; c < kNumStatusCodes; ++c) {
    const auto code = static_cast<StatusCode>(c);
    if (exit_code(code) == exit) return code;
  }
  return StatusCode::kInternal;
}

std::string Status::render() const {
  if (is_ok()) return "ok";
  std::string out = "[" + phase_ + "] ";
  out += to_string(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tydi::support
