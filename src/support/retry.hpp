// Capped exponential backoff with deterministic jitter — the client-side
// half of the service's admission control.
//
// When `tydid` sheds a request (StatusCode::kUnavailable) the shed frame
// carries a retry-after-ms hint sized from the daemon's queue state. A
// `Retry` turns that contract into a loop: each failed attempt yields a
// delay that grows exponentially (base * multiplier^attempt, capped), is
// jittered deterministically from a caller-provided seed (splitmix64 of
// (seed, attempt) — two clients with different seeds desynchronize, one
// client replays identically, and tests are reproducible), and never
// undercuts the server's hint. Used by `tydid --request` and by the
// daemon-side batch-manifest client (`tydid --batch-manifest`), which runs
// one Retry per manifest job.
#pragma once

#include <cstdint>

namespace tydi::support {

struct RetryPolicy {
  /// Total attempts including the first (1 = no retry; <= 0 behaves as 1).
  int max_attempts = 3;
  /// Backoff before the second attempt, in ms.
  double base_ms = 50.0;
  /// Ceiling on the computed backoff (the server hint may exceed it).
  double max_backoff_ms = 2000.0;
  double multiplier = 2.0;
  /// Jitter seed. Same seed + same attempt sequence => same delays.
  std::uint64_t seed = 0;
};

/// Tracks one request's attempt budget. Not thread-safe (one request, one
/// thread).
class Retry {
 public:
  explicit Retry(RetryPolicy policy) : policy_(policy) {}

  /// Call after a retryable failure. Returns false when the attempt budget
  /// is exhausted (the caller should give up); otherwise sets `delay_ms` to
  /// the pre-next-attempt sleep: jittered exponential backoff, raised to at
  /// least `server_hint_ms` (a shed response's retry-after-ms; pass 0 when
  /// the failure carried no hint).
  [[nodiscard]] bool next_delay_ms(double server_hint_ms, double& delay_ms);

  /// Attempts made so far (the first attempt counts as 1 once it failed).
  [[nodiscard]] int attempts() const { return attempts_; }
  /// The 1-based number of the attempt about to run (ATTEMPT wire token).
  [[nodiscard]] int next_attempt() const { return attempts_ + 1; }

 private:
  RetryPolicy policy_;
  int attempts_ = 0;
};

/// The deterministic jitter factor in [0.5, 1.0) used by Retry: a
/// splitmix64 hash of (seed, attempt) mapped onto the unit interval.
/// Exposed for tests and for callers that schedule their own sleeps.
[[nodiscard]] double retry_jitter(std::uint64_t seed, int attempt);

}  // namespace tydi::support
