#include "src/support/text.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace tydi::support {

namespace {

std::atomic<std::uint64_t> g_chunk_allocs{0};

}  // namespace

std::uint64_t CodeWriter::process_chunk_allocs() {
  return g_chunk_allocs.load(std::memory_order_relaxed);
}

void CodeWriter::new_chunk() {
  chunks_.emplace_back();
  chunks_.back().reserve(next_chunk_bytes_);
  next_chunk_bytes_ = std::min(kChunkBytes, next_chunk_bytes_ * 8);
  ++chunk_allocs_;
  g_chunk_allocs.fetch_add(1, std::memory_order_relaxed);
}

void CodeWriter::put_slow(std::string_view text) {
  // total_ was already advanced by put(). Fill the current chunk to its
  // reserved capacity, then roll into fresh chunks for the remainder.
  while (true) {
    if (chunks_.empty() ||
        chunks_.back().size() == chunks_.back().capacity()) {
      new_chunk();
    }
    std::string& back = chunks_.back();
    const std::size_t n =
        std::min(back.capacity() - back.size(), text.size());
    back.append(text.data(), n);
    text.remove_prefix(n);
    if (text.empty()) return;
  }
}

void CodeWriter::grow_indent_cache(std::size_t want) {
  while (indent_cache_.size() < want) indent_cache_ += indent_unit_;
}

void CodeWriter::append(CodeWriter&& other) {
  total_ += other.total_;
  chunk_allocs_ += other.chunk_allocs_;
  next_chunk_bytes_ = std::max(next_chunk_bytes_, other.next_chunk_bytes_);
  chunks_.reserve(chunks_.size() + other.chunks_.size());
  for (std::string& chunk : other.chunks_) {
    chunks_.push_back(std::move(chunk));
  }
  other.chunks_.clear();
  other.total_ = 0;
  other.chunk_allocs_ = 0;
  other.next_chunk_bytes_ = kFirstChunkBytes;
}

std::string CodeWriter::str() const {
  std::string out;
  out.reserve(total_);
  for (const std::string& chunk : chunks_) out += chunk;
  return out;
}

std::string CodeWriter::take() {
  if (chunks_.size() == 1 && chunks_.front().size() == total_) {
    // Single-chunk fast path: hand the chunk over without copying.
    std::string out = std::move(chunks_.front());
    chunks_.clear();
    total_ = 0;
    return out;
  }
  std::string out = str();
  chunks_.clear();
  total_ = 0;
  return out;
}

namespace {

// Removes /* ... */ block comments (non-nesting, as in the Tydi-lang
// grammar); unterminated blocks are stripped to end of input.
std::string strip_block_comments(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    if (i + 1 < text.size() && text[i] == '/' && text[i + 1] == '*') {
      std::size_t end = text.find("*/", i + 2);
      // Keep newlines so line structure (and LoC of surrounding code) holds.
      std::size_t stop = (end == std::string_view::npos) ? text.size() : end + 2;
      for (std::size_t j = i; j < stop; ++j) {
        if (text[j] == '\n') out += '\n';
      }
      i = stop;
    } else {
      out += text[i];
      ++i;
    }
  }
  return out;
}

}  // namespace

std::size_t count_loc(std::string_view text,
                      const std::vector<std::string_view>& comment_prefixes) {
  std::string stripped = strip_block_comments(text);
  std::size_t count = 0;
  for (std::string_view line : split_lines(stripped)) {
    // Trim whitespace.
    std::size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string_view::npos) continue;  // blank line
    std::string_view body = line.substr(b);
    bool comment_only = false;
    for (std::string_view p : comment_prefixes) {
      if (body.substr(0, p.size()) == p) {
        comment_only = true;
        break;
      }
    }
    if (!comment_only) ++count;
  }
  return count;
}

std::size_t count_tydi_loc(std::string_view text) {
  return count_loc(text, {"//"});
}

std::size_t count_vhdl_loc(std::string_view text) {
  return count_loc(text, {"--"});
}

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  auto emit = [&out, &widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out << cells[i];
      if (i + 1 < cells.size()) {
        out << std::string(widths[i] - cells[i].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::vector<std::string> rule;
    rule.reserve(header_.size());
    for (std::size_t i = 0; i < header_.size(); ++i) {
      rule.push_back(std::string(widths[i], '-'));
    }
    emit(rule);
  }
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string format_fixed(double value, int digits) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(digits);
  out << value;
  return out.str();
}

bool starts_with_trimmed(std::string_view text, std::string_view prefix) {
  std::size_t b = text.find_first_not_of(" \t");
  if (b == std::string_view::npos) return prefix.empty();
  return text.substr(b, prefix.size()) == prefix;
}

std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      if (start < text.size()) out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string sanitize_identifier(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  bool last_underscore = false;
  for (char c : name) {
    char mapped;
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      mapped = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      mapped = '_';
    }
    if (mapped == '_') {
      if (last_underscore) continue;
      last_underscore = true;
    } else {
      last_underscore = false;
    }
    out += mapped;
  }
  // VHDL identifiers cannot start or end with '_' nor start with a digit.
  while (!out.empty() && out.front() == '_') out.erase(out.begin());
  while (!out.empty() && out.back() == '_') out.pop_back();
  if (out.empty() || (std::isdigit(static_cast<unsigned char>(out[0])) != 0)) {
    out.insert(out.begin(), 'x');
  }
  return out;
}

}  // namespace tydi::support
