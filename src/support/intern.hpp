// Global string interner (Sec. V performance substrate).
//
// Every name that crosses the elaborator/simulator boundary — port names,
// instance paths, impl names, scope bindings — is interned once into a
// process-wide table and handled as a dense 32-bit `Symbol` afterwards.
// Symbol comparison is integer comparison; the steady-state simulation path
// never touches string hashing or string-keyed maps. The table only grows
// (symbols are stable for the lifetime of the process), mirroring the
// resolve-names-once-at-lowering approach of compiled simulation kernels.
#pragma once

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace tydi::support {

/// Index into the global interner table. Dense, starts at 0.
using Symbol = std::uint32_t;

/// Sentinel for "not yet interned / no name".
inline constexpr Symbol kNoSymbol = 0xFFFFFFFFu;

/// Thread-safe: the sharded simulator interns (rarely — state values and
/// diagnostics) from worker threads. Lookups take a shared lock; first-time
/// insertion upgrades to an exclusive lock.
class Interner {
 public:
  /// Returns the symbol for `s`, inserting it on first sight. Stable: the
  /// same string always yields the same symbol.
  Symbol intern(std::string_view s);

  /// The string behind a symbol. `sym` must come from this interner.
  /// The returned reference is stable for the process lifetime (the table
  /// only grows and element addresses never move).
  [[nodiscard]] const std::string& str(Symbol sym) const {
    std::shared_lock lock(mu_);
    return strings_[sym];
  }

  /// Symbol for `s` if already interned, else kNoSymbol (no insertion).
  [[nodiscard]] Symbol find(std::string_view s) const;

  [[nodiscard]] std::size_t size() const {
    std::shared_lock lock(mu_);
    return strings_.size();
  }

  /// The process-wide interner used by the compiler and simulator.
  static Interner& global();

 private:
  mutable std::shared_mutex mu_;
  // deque keeps element addresses stable so the string_view keys of index_
  // can point into strings_ without re-keying on growth.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, Symbol> index_;
};

/// Shorthands over Interner::global().
[[nodiscard]] Symbol intern(std::string_view s);
[[nodiscard]] const std::string& symbol_name(Symbol sym);

}  // namespace tydi::support
