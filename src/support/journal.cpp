#include "src/support/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>

namespace tydi::support {

namespace {

Status io_error(const std::string& what) {
  return Status::error(StatusCode::kIoError, "journal",
                       what + ": " + std::strerror(errno));
}

/// CRC32C lookup table (reflected polynomial 0x82F63B78), built once.
const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

/// splitmix64 — the same stateless counter-hash the sim fault injector
/// uses, so one seed yields one reproducible fault schedule.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t site_hash(std::uint64_t seed, std::uint32_t site,
                        std::uint64_t step) {
  return mix64(seed ^ mix64(static_cast<std::uint64_t>(site) << 32 | step));
}

double unit_interval(std::uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

void put_u32le(char* out, std::uint32_t v) {
  out[0] = static_cast<char>(v & 0xFF);
  out[1] = static_cast<char>((v >> 8) & 0xFF);
  out[2] = static_cast<char>((v >> 16) & 0xFF);
  out[3] = static_cast<char>((v >> 24) & 0xFF);
}

std::uint32_t get_u32le(const char* in) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(in[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[3])) << 24;
}

/// One framed record: length + crc + payload.
std::string frame_record(std::string_view payload) {
  std::string frame(kRecordHeaderBytes + payload.size(), '\0');
  put_u32le(frame.data(), static_cast<std::uint32_t>(payload.size()));
  put_u32le(frame.data() + 4, crc32c(payload));
  std::memcpy(frame.data() + kRecordHeaderBytes, payload.data(),
              payload.size());
  return frame;
}

/// Writes the whole buffer, retrying on EINTR / short writes. Returns the
/// number of bytes that actually landed (== data.size() on success).
std::size_t write_all(int fd, std::string_view data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    written += static_cast<std::size_t>(n);
  }
  return written;
}

/// fsyncs the directory containing `path`, so a rename into it is durable.
Status fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return io_error("open dir " + dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return io_error("fsync dir " + dir);
  return Status::ok();
}

}  // namespace

std::uint32_t crc32c(std::string_view data) {
  const auto& table = crc32c_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (char c : data) {
    crc = (crc >> 8) ^
          table[(crc ^ static_cast<unsigned char>(c)) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

IoFaultPlan IoFaultPlan::from_seed(std::uint64_t seed) {
  IoFaultPlan plan;
  plan.seed = seed;
  if (seed == 0) return plan;
  auto p = [seed](std::uint32_t salt) {
    return 0.05 + 0.35 * unit_interval(site_hash(seed, salt, 0));
  };
  plan.torn_append_p = p(101);
  plan.bit_flip_p = p(102);
  plan.enospc_p = p(103);
  return plan;
}

bool IoFaultInjector::fires(Site site) {
  const auto index = static_cast<std::uint32_t>(site);
  const std::uint64_t step = steps_[index]++;
  if (plan_.seed == 0) return false;
  double probability = 0.0;
  switch (site) {
    case Site::kTornAppend:
      probability = plan_.torn_append_p;
      break;
    case Site::kBitFlip:
      probability = plan_.bit_flip_p;
      break;
    case Site::kEnospc:
      probability = plan_.enospc_p;
      break;
  }
  if (probability <= 0.0) return false;
  return unit_interval(site_hash(plan_.seed, index, step)) < probability;
}

std::uint64_t IoFaultInjector::pick(Site site, std::uint64_t bound) const {
  if (bound == 0) return 0;
  const auto index = static_cast<std::uint32_t>(site);
  // steps_[index] was already advanced by the fires() that triggered this
  // pick; hash the firing step with a salt so the pick decorrelates from
  // the fire decision.
  const std::uint64_t step = steps_[index] == 0 ? 0 : steps_[index] - 1;
  return site_hash(plan_.seed ^ 0xA5A5A5A5u, index, step) % bound;
}

Status recover_journal(const std::string& path, RecoveredJournal& out) {
  out = RecoveredJournal{};
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    if (errno == ENOENT) return Status::ok();  // first boot: empty journal
    return io_error("open " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  if (file.bad()) return io_error("read " + path);
  out.total_bytes = bytes.size();

  // Header: anything short of the magic recovers cold (valid_bytes 0 — the
  // repair path rewrites a fresh header).
  if (bytes.size() < kJournalHeaderBytes ||
      std::memcmp(bytes.data(), kJournalMagic, kJournalHeaderBytes) != 0) {
    return Status::ok();
  }
  std::size_t offset = kJournalHeaderBytes;
  out.valid_bytes = offset;

  // Scan records forward; the first frame that does not validate ends the
  // journal (torn tail or corruption — everything after it is untrusted,
  // because record boundaries downstream of a bad length are unknowable).
  while (offset + kRecordHeaderBytes <= bytes.size()) {
    const std::uint32_t length = get_u32le(bytes.data() + offset);
    const std::uint32_t crc = get_u32le(bytes.data() + offset + 4);
    if (length > kMaxRecordBytes) break;                      // garbage length
    if (offset + kRecordHeaderBytes + length > bytes.size()) break;  // torn
    const std::string_view payload(bytes.data() + offset + kRecordHeaderBytes,
                                   length);
    if (crc32c(payload) != crc) break;  // flipped bits
    out.records.emplace_back(payload);
    offset += kRecordHeaderBytes + length;
    out.valid_bytes = offset;
  }
  return Status::ok();
}

Status truncate_journal(const std::string& path, std::uint64_t valid_bytes) {
  if (valid_bytes < kJournalHeaderBytes) {
    // Corrupt beyond salvage (or not a journal): start fresh.
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return io_error("create " + path);
    Status status = Status::ok();
    if (write_all(fd, std::string_view(kJournalMagic,
                                       kJournalHeaderBytes)) !=
        kJournalHeaderBytes) {
      status = io_error("write header " + path);
    } else if (::fsync(fd) != 0) {
      status = io_error("fsync " + path);
    }
    ::close(fd);
    return status;
  }
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return io_error("truncate " + path);
  }
  return Status::ok();
}

Status write_snapshot_atomic(const std::string& path,
                             const std::vector<std::string>& records,
                             IoFaultInjector* injector) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return io_error("create " + tmp);

  std::string image(kJournalMagic, kJournalHeaderBytes);
  for (const std::string& record : records) image += frame_record(record);

  const bool crash_mid =
      injector != nullptr && injector->plan().crash_mid_snapshot;
  const std::string_view to_write =
      crash_mid ? std::string_view(image).substr(0, image.size() / 2)
                : std::string_view(image);
  const std::size_t written = write_all(fd, to_write);
  if (crash_mid) {
    // Simulated death mid-snapshot: temp partially written, never renamed.
    // The live journal at `path` must be untouched.
    ::close(fd);
    return Status::error(StatusCode::kIoError, "journal",
                         "simulated crash mid-snapshot");
  }
  if (written != image.size()) {
    const Status status = io_error("write " + tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  if (::fsync(fd) != 0) {
    const Status status = io_error("fsync " + tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  ::close(fd);
  if (injector != nullptr && injector->plan().crash_before_rename) {
    // Simulated death between fsync and rename: complete temp file on
    // disk, live journal untouched. A later snapshot overwrites the temp.
    return Status::error(StatusCode::kIoError, "journal",
                         "simulated crash before rename");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status status = io_error("rename " + tmp + " -> " + path);
    ::unlink(tmp.c_str());
    return status;
  }
  // The rename is only durable once the directory entry is — fsync the
  // parent so a crash right after this call still boots the new snapshot.
  return fsync_parent_dir(path);
}

Status JournalWriter::open(const std::string& path) {
  close();
  crashed_ = false;
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) return io_error("open " + path);
  path_ = path;
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    const Status status = io_error("stat " + path);
    close();
    return status;
  }
  bytes_ = static_cast<std::uint64_t>(st.st_size);
  if (bytes_ < kJournalHeaderBytes) {
    // Fresh (or header-repaired) journal: write the magic.
    if (write_all(fd_, std::string_view(kJournalMagic,
                                        kJournalHeaderBytes)) !=
        kJournalHeaderBytes) {
      const Status status = io_error("write header " + path);
      close();
      return status;
    }
    bytes_ = kJournalHeaderBytes;
  }
  return Status::ok();
}

void JournalWriter::set_fault_plan(const IoFaultPlan& plan) {
  injector_ = IoFaultInjector(plan);
}

Status JournalWriter::append(std::string_view payload) {
  if (crashed_) {
    return Status::error(StatusCode::kIoError, "journal",
                         "writer crashed (simulated)");
  }
  if (fd_ < 0) {
    return Status::error(StatusCode::kIoError, "journal", "writer not open");
  }
  if (payload.size() > kMaxRecordBytes) {
    return Status::error(StatusCode::kInvalidArgument, "journal",
                         "record too large");
  }
  std::string frame = frame_record(payload);

  if (injector_.fires(IoFaultInjector::Site::kBitFlip)) {
    // Silent corruption: one bit of the frame flips on the way to disk.
    // The append reports success — exactly what failing media does.
    const std::uint64_t bit =
        injector_.pick(IoFaultInjector::Site::kBitFlip, frame.size() * 8);
    frame[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(frame[bit / 8]) ^ (1u << (bit % 8)));
    if (write_all(fd_, frame) != frame.size()) {
      return io_error("write " + path_);
    }
    bytes_ += frame.size();
    (void)::fsync(fd_);
    return Status::ok();
  }

  if (injector_.fires(IoFaultInjector::Site::kTornAppend)) {
    // Simulated process death mid-write: a prefix lands, then the writer is
    // dead. No repair — recovery on the next boot truncates the tear.
    const std::uint64_t keep =
        injector_.pick(IoFaultInjector::Site::kTornAppend, frame.size());
    (void)write_all(fd_, std::string_view(frame).substr(0, keep));
    (void)::fsync(fd_);
    crashed_ = true;
    return Status::error(StatusCode::kIoError, "journal",
                         "simulated crash mid-append");
  }

  const bool enospc = injector_.fires(IoFaultInjector::Site::kEnospc);
  std::size_t written;
  if (enospc) {
    // ENOSPC after a partial write. Unlike a crash the process is alive to
    // repair the tear, so the journal must stay valid for future appends.
    written = write_all(
        fd_, std::string_view(frame).substr(
                 0, injector_.pick(IoFaultInjector::Site::kEnospc,
                                   frame.size())));
  } else {
    written = write_all(fd_, frame);
  }
  if (enospc || written != frame.size()) {
    // Repair the torn tail: truncate back to the last good offset so the
    // next append (when space frees up) lands on a valid journal.
    if (::ftruncate(fd_, static_cast<off_t>(bytes_)) != 0) {
      crashed_ = true;  // cannot repair: stop appending to a torn file
      return io_error("ftruncate " + path_);
    }
    (void)::fsync(fd_);
    return enospc ? Status::error(StatusCode::kIoError, "journal",
                                  "no space left on device (simulated)")
                  : io_error("write " + path_);
  }
  bytes_ += frame.size();
  if (::fsync(fd_) != 0) return io_error("fsync " + path_);
  return Status::ok();
}

void JournalWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  bytes_ = 0;
  path_.clear();
}

}  // namespace tydi::support
