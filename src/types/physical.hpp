// Physical stream computation — maps a logical Stream to the hardware
// signals of the Tydi-spec physical stream protocol.
//
// For Stream(elem, t, d, c) with N = ceil(t) lanes and D = d dimensions the
// physical stream carries (in addition to valid/ready):
//   data : N * |elem|                      element lanes
//   last : D bits (C < 8) or N * D (C = 8) end-of-sequence markers
//   stai : ceil(log2 N) if C >= 6 and N > 1   start index
//   endi : ceil(log2 N) if (C >= 5 or D >= 1) and N > 1   end index
//   strb : N bits if C >= 7 or D >= 1      per-lane strobe
//   user : |user|                          side-band, not element-synchronous
//
// Nested Streams inside the element do not travel in the parent's data lanes;
// they are split off as *secondary* physical streams (Tydi-spec
// "streamspace"), one per nested stream field, named parent__field.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/types/logical_type.hpp"

namespace tydi::types {

/// One hardware signal of a physical stream.
struct PhysicalSignal {
  std::string name;        ///< "valid", "ready", "data", "last", ...
  std::int64_t width = 1;  ///< in bits; width 0 signals are omitted
  bool reverse = false;    ///< true for ready (flows sink -> source)
};

/// The signal bundle of one physical stream.
struct PhysicalStream {
  /// Hierarchical name: the port name, or port__field for split-off nested
  /// streams.
  std::string name;
  std::int64_t element_bits = 0;
  int lanes = 1;
  int dimension = 0;
  int complexity = 1;
  std::int64_t data_bits = 0;
  std::int64_t last_bits = 0;
  std::int64_t stai_bits = 0;
  std::int64_t endi_bits = 0;
  std::int64_t strb_bits = 0;
  std::int64_t user_bits = 0;
  StreamDir direction = StreamDir::kForward;

  /// All payload bits that travel source->sink (excludes valid/ready).
  [[nodiscard]] std::int64_t payload_bits() const {
    return data_bits + last_bits + stai_bits + endi_bits + strb_bits +
           user_bits;
  }

  /// The signal list for HDL emission, in canonical order: valid, ready,
  /// data, last, stai, endi, strb, user. Zero-width signals are omitted.
  [[nodiscard]] std::vector<PhysicalSignal> signals() const;
};

/// Computes the physical stream(s) for a port of logical type `type`, which
/// must be a Stream. The first entry is the primary stream named
/// `port_name`; nested Stream fields follow as `port_name__field...`.
/// Throws std::invalid_argument if `type` is not a Stream.
[[nodiscard]] std::vector<PhysicalStream> physical_streams(
    const TypeRef& type, const std::string& port_name);

/// Number of lanes for a throughput: N = ceil(t), minimum 1.
[[nodiscard]] int lanes_for_throughput(double throughput);

}  // namespace tydi::types
