// Resolved Tydi logical types (Tydi-spec, Sec. II and Table I of the paper).
//
// These are the *concrete* types produced by elaboration (all widths are
// evaluated integers), distinct from the syntactic `lang::TypeExpr`. A
// LogicalType is immutable and shared via TypeRef.
//
// Bit-width algebra (Table I):
//   Null        -> 0 bits (streams of Null are optimized out)
//   Bit(x)      -> x bits
//   Group(a,b)  -> |a| + |b|
//   Union(a,b)  -> max(|a|, |b|)   [the paper's rule; the full Tydi-spec adds
//                  a ceil(log2(n)) tag which we expose via union_tag_bits()]
//   Stream(x)   -> carries x in stream space; contributes 0 bits to an
//                  enclosing Group/Union (nested streams are split into
//                  secondary physical streams, see physical.hpp)
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "src/ast/ast.hpp"

namespace tydi::types {

using lang::StreamDir;
using lang::Synchronicity;

class LogicalType;
using TypeRef = std::shared_ptr<const LogicalType>;

struct NullT {};

struct BitT {
  std::int64_t width = 1;
};

struct Field {
  std::string name;
  TypeRef type;
};

struct GroupT {
  std::vector<Field> fields;
};

struct UnionT {
  std::vector<Field> fields;
};

/// Stream-space parameters (Tydi-spec). Defaults match the spec: one lane,
/// dimension 0, complexity 1, Sync, Forward, no user signal.
struct StreamParams {
  double throughput = 1.0;  ///< element lanes = ceil(throughput)
  int dimension = 0;        ///< nesting depth of variable-length sequences
  int complexity = 1;       ///< protocol complexity C1..C8
  Synchronicity synchronicity = Synchronicity::kSync;
  StreamDir direction = StreamDir::kForward;
  TypeRef user;  ///< optional user-signal type (may be null)

  friend bool operator==(const StreamParams& a, const StreamParams& b);
};

struct StreamT {
  TypeRef element;
  StreamParams params;
};

class LogicalType {
 public:
  using Node = std::variant<NullT, BitT, GroupT, UnionT, StreamT>;

  LogicalType(Node node, std::string origin)
      : node_(std::move(node)), origin_(std::move(origin)) {}

  [[nodiscard]] const Node& node() const { return node_; }

  /// The declaration identity used for *strict* type equality (Sec. IV-B):
  /// the name of the Group/Union/type-alias this type was resolved from,
  /// qualified by template context. Empty for anonymous (inline) types.
  [[nodiscard]] const std::string& origin() const { return origin_; }

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<NullT>(node_);
  }
  [[nodiscard]] bool is_bit() const {
    return std::holds_alternative<BitT>(node_);
  }
  [[nodiscard]] bool is_group() const {
    return std::holds_alternative<GroupT>(node_);
  }
  [[nodiscard]] bool is_union() const {
    return std::holds_alternative<UnionT>(node_);
  }
  [[nodiscard]] bool is_stream() const {
    return std::holds_alternative<StreamT>(node_);
  }

  [[nodiscard]] const StreamT& as_stream() const {
    return std::get<StreamT>(node_);
  }
  [[nodiscard]] const BitT& as_bit() const { return std::get<BitT>(node_); }
  [[nodiscard]] const GroupT& as_group() const {
    return std::get<GroupT>(node_);
  }
  [[nodiscard]] const UnionT& as_union() const {
    return std::get<UnionT>(node_);
  }

  /// Data bits this type contributes to an enclosing element (Table I rules;
  /// nested Streams contribute 0).
  [[nodiscard]] std::int64_t bit_width() const;

  /// Display form, e.g. `Group{data: Bit(32), ok: Bit(1)}` or
  /// `Stream(Bit(8), t=2, d=1, c=7)`.
  [[nodiscard]] std::string to_display() const;

 private:
  Node node_;
  std::string origin_;
};

// --- Constructors -----------------------------------------------------------

[[nodiscard]] TypeRef make_null();
[[nodiscard]] TypeRef make_bit(std::int64_t width, std::string origin = {});
[[nodiscard]] TypeRef make_group(std::vector<Field> fields,
                                 std::string origin = {});
[[nodiscard]] TypeRef make_union(std::vector<Field> fields,
                                 std::string origin = {});
[[nodiscard]] TypeRef make_stream(TypeRef element, StreamParams params = {},
                                  std::string origin = {});

/// Re-tags `base` with a new origin (used when a type alias names an
/// anonymous type: `type Input = Stream(...)` gives the stream the origin
/// "Input" for strict equality).
[[nodiscard]] TypeRef with_origin(const TypeRef& base, std::string origin);

/// Tag bits a full Tydi-spec union would carry: ceil(log2(n)) for n variants
/// (0 for n <= 1). Exposed for the physical layer and tests.
[[nodiscard]] std::int64_t union_tag_bits(std::size_t variant_count);

/// Deep structural equality, ignoring origins (used by `@structural`
/// connections and by strict equality on anonymous types).
[[nodiscard]] bool structural_equal(const LogicalType& a,
                                    const LogicalType& b);

/// Strict equality per Sec. IV-B: same named origin when both are named;
/// structural otherwise.
[[nodiscard]] bool strict_equal(const LogicalType& a, const LogicalType& b);

}  // namespace tydi::types
