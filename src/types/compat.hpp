// Connection compatibility — the rules the DRC enforces on every connection
// (paper Table I, "Connection" row, and Sec. III: "the logical types of two
// connected ports must be identical").
#pragma once

#include <string>

#include "src/types/logical_type.hpp"

namespace tydi::types {

struct CompatResult {
  bool ok = true;
  std::string reason;  ///< empty when ok

  static CompatResult yes() { return {}; }
  static CompatResult no(std::string why) {
    return CompatResult{false, std::move(why)};
  }
};

/// Checks whether a source port of type `src` may drive a sink port of type
/// `dst`. Both must be Streams. `strict` selects named-identity type
/// equality (the default DRC mode); `@structural` connections pass false.
///
/// Rules:
///  - element types equal (strict or structural per flag)
///  - identical dimension, lanes, synchronicity, direction, user type
///  - source complexity <= sink complexity ("compatible protocol
///    complexities": a simpler producer may feed a more tolerant consumer)
[[nodiscard]] CompatResult check_connection(const LogicalType& src,
                                            const LogicalType& dst,
                                            bool strict);

}  // namespace tydi::types
