#include "src/types/logical_type.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/support/text.hpp"

namespace tydi::types {

bool operator==(const StreamParams& a, const StreamParams& b) {
  bool user_equal =
      (a.user == nullptr && b.user == nullptr) ||
      (a.user != nullptr && b.user != nullptr &&
       structural_equal(*a.user, *b.user));
  return a.throughput == b.throughput && a.dimension == b.dimension &&
         a.complexity == b.complexity &&
         a.synchronicity == b.synchronicity && a.direction == b.direction &&
         user_equal;
}

std::int64_t LogicalType::bit_width() const {
  return std::visit(
      [](const auto& n) -> std::int64_t {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, NullT>) {
          return 0;
        } else if constexpr (std::is_same_v<T, BitT>) {
          return n.width;
        } else if constexpr (std::is_same_v<T, GroupT>) {
          std::int64_t sum = 0;
          for (const Field& f : n.fields) sum += f.type->bit_width();
          return sum;
        } else if constexpr (std::is_same_v<T, UnionT>) {
          std::int64_t best = 0;
          for (const Field& f : n.fields) {
            best = std::max(best, f.type->bit_width());
          }
          return best;
        } else {  // StreamT: carried in stream space, not in parent data
          return 0;
        }
      },
      node_);
}

std::string LogicalType::to_display() const {
  std::ostringstream out;
  std::visit(
      [&out](const auto& n) {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, NullT>) {
          out << "Null";
        } else if constexpr (std::is_same_v<T, BitT>) {
          out << "Bit(" << n.width << ")";
        } else if constexpr (std::is_same_v<T, GroupT> ||
                             std::is_same_v<T, UnionT>) {
          out << (std::is_same_v<T, GroupT> ? "Group{" : "Union{");
          for (std::size_t i = 0; i < n.fields.size(); ++i) {
            if (i > 0) out << ", ";
            out << n.fields[i].name << ": " << n.fields[i].type->to_display();
          }
          out << "}";
        } else {  // StreamT
          out << "Stream(" << n.element->to_display();
          if (n.params.throughput != 1.0) out << ", t=" << n.params.throughput;
          if (n.params.dimension != 0) out << ", d=" << n.params.dimension;
          if (n.params.complexity != 1) out << ", c=" << n.params.complexity;
          if (n.params.synchronicity != Synchronicity::kSync) {
            out << ", s=" << lang::to_string(n.params.synchronicity);
          }
          if (n.params.direction != StreamDir::kForward) {
            out << ", r=" << lang::to_string(n.params.direction);
          }
          if (n.params.user) out << ", u=" << n.params.user->to_display();
          out << ")";
        }
      },
      node_);
  if (!origin_.empty()) out << " [" << origin_ << "]";
  return out.str();
}

TypeRef make_null() {
  static const TypeRef singleton =
      std::make_shared<LogicalType>(NullT{}, std::string{});
  return singleton;
}

TypeRef make_bit(std::int64_t width, std::string origin) {
  return std::make_shared<LogicalType>(BitT{width}, std::move(origin));
}

TypeRef make_group(std::vector<Field> fields, std::string origin) {
  return std::make_shared<LogicalType>(GroupT{std::move(fields)},
                                       std::move(origin));
}

TypeRef make_union(std::vector<Field> fields, std::string origin) {
  return std::make_shared<LogicalType>(UnionT{std::move(fields)},
                                       std::move(origin));
}

TypeRef make_stream(TypeRef element, StreamParams params, std::string origin) {
  return std::make_shared<LogicalType>(
      StreamT{std::move(element), std::move(params)}, std::move(origin));
}

TypeRef with_origin(const TypeRef& base, std::string origin) {
  return std::make_shared<LogicalType>(base->node(), std::move(origin));
}

std::int64_t union_tag_bits(std::size_t variant_count) {
  if (variant_count <= 1) return 0;
  return static_cast<std::int64_t>(
      std::ceil(std::log2(static_cast<double>(variant_count))));
}

namespace {

bool fields_equal(const std::vector<Field>& a, const std::vector<Field>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name) return false;
    if (!structural_equal(*a[i].type, *b[i].type)) return false;
  }
  return true;
}

}  // namespace

bool structural_equal(const LogicalType& a, const LogicalType& b) {
  if (a.node().index() != b.node().index()) return false;
  return std::visit(
      [&b](const auto& na) -> bool {
        using T = std::decay_t<decltype(na)>;
        if constexpr (std::is_same_v<T, NullT>) {
          return true;
        } else if constexpr (std::is_same_v<T, BitT>) {
          return na.width == std::get<BitT>(b.node()).width;
        } else if constexpr (std::is_same_v<T, GroupT>) {
          return fields_equal(na.fields, std::get<GroupT>(b.node()).fields);
        } else if constexpr (std::is_same_v<T, UnionT>) {
          return fields_equal(na.fields, std::get<UnionT>(b.node()).fields);
        } else {  // StreamT
          const auto& nb = std::get<StreamT>(b.node());
          return structural_equal(*na.element, *nb.element) &&
                 na.params == nb.params;
        }
      },
      a.node());
}

bool strict_equal(const LogicalType& a, const LogicalType& b) {
  // "DRC will check the strict type equality (two ports must be defined with
  // the same logical type variable)" — named types compare by declaration
  // identity; anonymous types fall back to structure.
  if (!a.origin().empty() && !b.origin().empty()) {
    return a.origin() == b.origin() && structural_equal(a, b);
  }
  if (a.origin().empty() != b.origin().empty()) return false;
  return structural_equal(a, b);
}

}  // namespace tydi::types
