#include "src/types/compat.hpp"

#include "src/types/physical.hpp"

namespace tydi::types {

CompatResult check_connection(const LogicalType& src, const LogicalType& dst,
                              bool strict) {
  if (!src.is_stream()) {
    return CompatResult::no("source port type is not a Stream: " +
                            src.to_display());
  }
  if (!dst.is_stream()) {
    return CompatResult::no("sink port type is not a Stream: " +
                            dst.to_display());
  }
  const StreamT& s = src.as_stream();
  const StreamT& d = dst.as_stream();

  // Strict mode compares the *stream type identity* first: two ports must
  // be declared with the same logical type variable (Sec. IV-B). Complexity
  // may still differ (checked directionally below), so this is an origin
  // check, not full strict_equal.
  if (strict) {
    if (!src.origin().empty() && !dst.origin().empty() &&
        src.origin() != dst.origin()) {
      return CompatResult::no(
          "stream types differ ('" + src.origin() + "' vs '" + dst.origin() +
          "') under strict named equality; use @structural to relax");
    }
    if (src.origin().empty() != dst.origin().empty()) {
      return CompatResult::no(
          "a named stream type cannot connect to an anonymous one under "
          "strict equality; use @structural to relax");
    }
  }

  bool elements_equal = strict ? strict_equal(*s.element, *d.element)
                               : structural_equal(*s.element, *d.element);
  if (!elements_equal) {
    return CompatResult::no(
        "element types differ (" + s.element->to_display() + " vs " +
        d.element->to_display() + ")" +
        (strict && structural_equal(*s.element, *d.element)
             ? " under strict named equality; use @structural to relax"
             : ""));
  }
  if (s.params.dimension != d.params.dimension) {
    return CompatResult::no(
        "stream dimensions differ (" + std::to_string(s.params.dimension) +
        " vs " + std::to_string(d.params.dimension) + ")");
  }
  if (lanes_for_throughput(s.params.throughput) !=
      lanes_for_throughput(d.params.throughput)) {
    return CompatResult::no("stream lane counts differ (throughput " +
                            std::to_string(s.params.throughput) + " vs " +
                            std::to_string(d.params.throughput) + ")");
  }
  if (s.params.synchronicity != d.params.synchronicity) {
    return CompatResult::no("stream synchronicities differ");
  }
  if (s.params.direction != d.params.direction) {
    return CompatResult::no("stream directions differ");
  }
  if (s.params.complexity > d.params.complexity) {
    return CompatResult::no(
        "source complexity C" + std::to_string(s.params.complexity) +
        " exceeds sink complexity C" + std::to_string(d.params.complexity) +
        " (a source may only drive an equally or more tolerant sink)");
  }
  bool user_equal = (s.params.user == nullptr && d.params.user == nullptr) ||
                    (s.params.user != nullptr && d.params.user != nullptr &&
                     structural_equal(*s.params.user, *d.params.user));
  if (!user_equal) {
    return CompatResult::no("user signal types differ");
  }
  return CompatResult::yes();
}

}  // namespace tydi::types
