#include "src/types/physical.hpp"

#include <cmath>
#include <stdexcept>

namespace tydi::types {

int lanes_for_throughput(double throughput) {
  if (throughput <= 1.0) return 1;
  return static_cast<int>(std::ceil(throughput));
}

namespace {

std::int64_t index_bits(int lanes) {
  if (lanes <= 1) return 0;
  return static_cast<std::int64_t>(
      std::ceil(std::log2(static_cast<double>(lanes))));
}

/// Walks `type` collecting nested stream fields; `prefix` accumulates the
/// hierarchical name. Nested streams inside nested streams recurse.
void collect_nested(const TypeRef& type, const std::string& prefix,
                    std::vector<PhysicalStream>& out);

PhysicalStream build_stream(const StreamT& s, const std::string& name) {
  PhysicalStream p;
  p.name = name;
  p.element_bits = s.element->bit_width();
  p.lanes = lanes_for_throughput(s.params.throughput);
  p.dimension = s.params.dimension;
  p.complexity = s.params.complexity;
  p.direction = s.params.direction;

  const int c = p.complexity;
  const int d = p.dimension;
  const int n = p.lanes;
  p.data_bits = static_cast<std::int64_t>(n) * p.element_bits;
  p.last_bits = (c >= 8) ? static_cast<std::int64_t>(n) * d : d;
  p.stai_bits = (c >= 6 && n > 1) ? index_bits(n) : 0;
  p.endi_bits = ((c >= 5 || d >= 1) && n > 1) ? index_bits(n) : 0;
  p.strb_bits = (c >= 7 || d >= 1) ? n : 0;
  p.user_bits = s.params.user ? s.params.user->bit_width() : 0;
  return p;
}

void collect_nested(const TypeRef& type, const std::string& prefix,
                    std::vector<PhysicalStream>& out) {
  if (type->is_group()) {
    for (const Field& f : type->as_group().fields) {
      collect_nested(f.type, prefix + "__" + f.name, out);
    }
    return;
  }
  if (type->is_union()) {
    for (const Field& f : type->as_union().fields) {
      collect_nested(f.type, prefix + "__" + f.name, out);
    }
    return;
  }
  if (type->is_stream()) {
    const StreamT& s = type->as_stream();
    out.push_back(build_stream(s, prefix));
    collect_nested(s.element, prefix, out);
  }
}

}  // namespace

std::vector<PhysicalSignal> PhysicalStream::signals() const {
  std::vector<PhysicalSignal> sigs;
  sigs.push_back(PhysicalSignal{"valid", 1, false});
  sigs.push_back(PhysicalSignal{"ready", 1, true});
  auto add = [&sigs](const char* sig_name, std::int64_t width) {
    if (width > 0) sigs.push_back(PhysicalSignal{sig_name, width, false});
  };
  add("data", data_bits);
  add("last", last_bits);
  add("stai", stai_bits);
  add("endi", endi_bits);
  add("strb", strb_bits);
  add("user", user_bits);
  return sigs;
}

std::vector<PhysicalStream> physical_streams(const TypeRef& type,
                                             const std::string& port_name) {
  if (type == nullptr || !type->is_stream()) {
    throw std::invalid_argument(
        "physical_streams: port type must be a Stream (got " +
        std::string(type ? type->to_display() : "<null>") + ")");
  }
  const StreamT& s = type->as_stream();
  std::vector<PhysicalStream> out;
  out.push_back(build_stream(s, port_name));
  // Nested streams within the element split into secondary streams.
  collect_nested(s.element, port_name, out);
  return out;
}

}  // namespace tydi::types
