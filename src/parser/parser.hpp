// Recursive-descent parser for Tydi-lang.
//
// Produces the AST ("code structure #1" in Fig. 3). Errors are reported to
// the DiagnosticEngine with source locations and the parser re-synchronizes
// at statement boundaries so multiple errors are reported per run — matching
// the report-style frontend of the paper rather than fail-fast.
#pragma once

#include <vector>

#include "src/ast/ast.hpp"
#include "src/lexer/token.hpp"
#include "src/support/diagnostic.hpp"

namespace tydi::lang {

class Parser {
 public:
  Parser(std::vector<Token> tokens, support::DiagnosticEngine& diags);

  /// Parses a whole source file. On errors, returns the declarations that
  /// could be recovered; check `diags.has_errors()`.
  [[nodiscard]] SourceFile parse_file();

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  support::DiagnosticEngine& diags_;
  // When > 0, '>' terminates the current template argument list, so the
  // expression grammar suppresses '<'/'>' comparisons (parenthesize to use
  // them inside template arguments).
  int angle_depth_ = 0;

  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const;
  const Token& advance();
  [[nodiscard]] bool check(TokenKind k) const { return peek().is(k); }
  bool match(TokenKind k);
  bool expect(TokenKind k, std::string_view context);
  void error_here(std::string message);
  void sync_to_decl();
  void sync_to_stmt_end();

  /// Panic mode (set by the first error_here of a broken construct):
  /// suppresses cascade diagnostics until the parser consumes a `;`/`}` or
  /// runs one of the sync_to_* recoveries.
  bool panic_ = false;

  // Declarations.
  bool parse_decl(SourceFile& file);
  ConstDecl parse_const_decl();
  TypeAliasDecl parse_type_alias();
  GroupDecl parse_group_or_union(bool is_union);
  StreamletDecl parse_streamlet();
  ImplDecl parse_impl();

  // Components.
  std::vector<TemplateParam> parse_template_params();
  std::vector<TemplateArg> parse_template_args();
  std::optional<ParamKind> parse_basic_kind();
  PortDecl parse_port();
  std::vector<ImplStmt> parse_impl_body(ImplDecl* impl_for_sim);
  ImplStmt parse_instance();
  ImplStmt parse_connection();
  ImplStmt parse_for();
  ImplStmt parse_if();
  ImplStmt parse_assert();
  ImplStmt parse_local_const();
  PortRef parse_port_ref();

  // Simulation syntax.
  SimBlock parse_sim_block();
  std::vector<SimAction> parse_sim_actions();
  SimAction parse_sim_action();

  // Types and expressions.
  TypeExprPtr parse_type();
  ExprPtr parse_expr();
  ExprPtr parse_range();
  ExprPtr parse_or();
  ExprPtr parse_and();
  ExprPtr parse_equality();
  ExprPtr parse_comparison();
  ExprPtr parse_additive();
  ExprPtr parse_multiplicative();
  ExprPtr parse_power();
  ExprPtr parse_unary();
  ExprPtr parse_postfix();
  ExprPtr parse_primary();
};

/// Convenience wrapper: lex + parse in one call.
[[nodiscard]] SourceFile parse(std::string_view text, support::FileId file,
                               support::DiagnosticEngine& diags);

}  // namespace tydi::lang
