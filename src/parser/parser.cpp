#include "src/parser/parser.hpp"

#include "src/lexer/lexer.hpp"

namespace tydi::lang {

Parser::Parser(std::vector<Token> tokens, support::DiagnosticEngine& diags)
    : tokens_(std::move(tokens)), diags_(diags) {
  if (tokens_.empty() || !tokens_.back().is(TokenKind::kEnd)) {
    Token end;
    end.kind = TokenKind::kEnd;
    tokens_.push_back(end);
  }
}

const Token& Parser::peek(std::size_t ahead) const {
  std::size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;
  return tokens_[i];
}

const Token& Parser::advance() {
  const Token& t = tokens_[pos_];
  // Consuming a statement/body boundary ends panic mode: whatever follows
  // is a fresh construct whose errors deserve their own diagnostics.
  if (panic_ &&
      (t.kind == TokenKind::kSemicolon || t.kind == TokenKind::kRBrace)) {
    panic_ = false;
  }
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::match(TokenKind k) {
  if (check(k)) {
    advance();
    return true;
  }
  return false;
}

bool Parser::expect(TokenKind k, std::string_view context) {
  if (match(k)) return true;
  error_here(std::string("expected ") + std::string(token_kind_name(k)) +
             " " + std::string(context) + ", found " +
             std::string(token_kind_name(peek().kind)));
  return false;
}

void Parser::error_here(std::string message) {
  // Panic mode: after one error, suppress the cascade of bogus follow-on
  // diagnostics a broken construct produces (every expect() after the
  // original failure would fire) until the parser synchronizes on a `;` or
  // `}` boundary or an explicit sync_to_* call. One malformed statement
  // therefore reports one precise error, and later statements still report
  // theirs — a single file yields all of its real diagnostics.
  if (panic_) return;
  panic_ = true;
  diags_.error("parser", std::move(message), peek().loc);
}

void Parser::sync_to_decl() {
  // Skip until a token that can begin a top-level declaration.
  int depth = 0;
  while (!check(TokenKind::kEnd)) {
    TokenKind k = peek().kind;
    if (depth == 0 &&
        (k == TokenKind::kKwConst || k == TokenKind::kKwType ||
         k == TokenKind::kKwGroup || k == TokenKind::kKwUnion ||
         k == TokenKind::kKwStreamlet || k == TokenKind::kKwImpl ||
         k == TokenKind::kKwPackage || k == TokenKind::kKwImport)) {
      break;
    }
    if (k == TokenKind::kLBrace) ++depth;
    if (k == TokenKind::kRBrace && depth > 0) --depth;
    advance();
  }
  panic_ = false;  // synchronized: report errors in what follows
}

void Parser::sync_to_stmt_end() {
  int depth = 0;
  while (!check(TokenKind::kEnd)) {
    TokenKind k = peek().kind;
    if (depth == 0 && (k == TokenKind::kSemicolon || k == TokenKind::kComma)) {
      advance();
      break;
    }
    if (depth == 0 && k == TokenKind::kRBrace) break;
    if (k == TokenKind::kLBrace) ++depth;
    if (k == TokenKind::kRBrace) --depth;
    advance();
  }
  panic_ = false;  // synchronized: report errors in what follows
}

SourceFile Parser::parse_file() {
  SourceFile file;
  if (check(TokenKind::kKwPackage)) {
    advance();
    if (check(TokenKind::kIdentifier)) {
      file.package = advance().text;
    } else {
      error_here("expected package name");
    }
    expect(TokenKind::kSemicolon, "after package name");
  }
  while (!check(TokenKind::kEnd)) {
    std::size_t before = pos_;
    if (!parse_decl(file)) {
      sync_to_decl();
      if (pos_ == before) advance();  // guarantee progress
    }
  }
  return file;
}

bool Parser::parse_decl(SourceFile& file) {
  switch (peek().kind) {
    case TokenKind::kKwImport:
      // `import x;` is accepted and ignored: all compilation in this
      // implementation is whole-program over concatenated sources.
      advance();
      if (check(TokenKind::kIdentifier)) advance();
      expect(TokenKind::kSemicolon, "after import");
      return true;
    case TokenKind::kKwConst:
      file.decls.push_back(Decl{parse_const_decl()});
      return true;
    case TokenKind::kKwType:
      file.decls.push_back(Decl{parse_type_alias()});
      return true;
    case TokenKind::kKwGroup:
      file.decls.push_back(Decl{parse_group_or_union(false)});
      return true;
    case TokenKind::kKwUnion:
      file.decls.push_back(Decl{parse_group_or_union(true)});
      return true;
    case TokenKind::kKwStreamlet:
      file.decls.push_back(Decl{parse_streamlet()});
      return true;
    case TokenKind::kKwImpl:
      file.decls.push_back(Decl{parse_impl()});
      return true;
    default:
      error_here("expected a declaration, found " +
                 std::string(token_kind_name(peek().kind)));
      return false;
  }
}

std::optional<ParamKind> Parser::parse_basic_kind() {
  switch (peek().kind) {
    case TokenKind::kKwInt: advance(); return ParamKind::kInt;
    case TokenKind::kKwFloat: advance(); return ParamKind::kFloat;
    case TokenKind::kKwString: advance(); return ParamKind::kString;
    case TokenKind::kKwBool: advance(); return ParamKind::kBool;
    case TokenKind::kKwClockdomain: advance(); return ParamKind::kClockdomain;
    default: return std::nullopt;
  }
}

ConstDecl Parser::parse_const_decl() {
  ConstDecl d;
  d.loc = peek().loc;
  expect(TokenKind::kKwConst, "");
  if (check(TokenKind::kIdentifier)) {
    d.name = advance().text;
  } else {
    error_here("expected constant name");
  }
  if (match(TokenKind::kColon)) {
    d.declared_kind = parse_basic_kind();
    if (!d.declared_kind) error_here("expected a basic type after ':'");
  }
  expect(TokenKind::kEq, "in const declaration");
  d.init = parse_expr();
  expect(TokenKind::kSemicolon, "after const declaration");
  return d;
}

TypeAliasDecl Parser::parse_type_alias() {
  TypeAliasDecl d;
  d.loc = peek().loc;
  expect(TokenKind::kKwType, "");
  if (check(TokenKind::kIdentifier)) {
    d.name = advance().text;
  } else {
    error_here("expected type alias name");
  }
  expect(TokenKind::kEq, "in type alias");
  d.type = parse_type();
  expect(TokenKind::kSemicolon, "after type alias");
  return d;
}

GroupDecl Parser::parse_group_or_union(bool is_union) {
  GroupDecl d;
  d.is_union = is_union;
  d.loc = peek().loc;
  advance();  // Group / Union
  if (check(TokenKind::kIdentifier)) {
    d.name = advance().text;
  } else {
    error_here(is_union ? "expected Union name" : "expected Group name");
  }
  expect(TokenKind::kLBrace, "to open field list");
  while (!check(TokenKind::kRBrace) && !check(TokenKind::kEnd)) {
    FieldDecl f;
    f.loc = peek().loc;
    if (check(TokenKind::kIdentifier)) {
      f.name = advance().text;
    } else {
      error_here("expected field name");
      sync_to_stmt_end();
      continue;
    }
    expect(TokenKind::kColon, "after field name");
    f.type = parse_type();
    d.fields.push_back(std::move(f));
    if (!match(TokenKind::kComma)) break;
  }
  expect(TokenKind::kRBrace, "to close field list");
  return d;
}

std::vector<TemplateParam> Parser::parse_template_params() {
  std::vector<TemplateParam> params;
  if (!match(TokenKind::kLess)) return params;
  do {
    TemplateParam p;
    p.loc = peek().loc;
    if (check(TokenKind::kIdentifier)) {
      p.name = advance().text;
    } else {
      error_here("expected template parameter name");
      break;
    }
    expect(TokenKind::kColon, "after template parameter name");
    if (auto basic = parse_basic_kind()) {
      p.kind = *basic;
    } else if (match(TokenKind::kKwType)) {
      p.kind = ParamKind::kType;
    } else if (match(TokenKind::kKwImpl)) {
      p.kind = ParamKind::kImpl;
      expect(TokenKind::kKwOf, "after 'impl' in template parameter");
      if (check(TokenKind::kIdentifier)) {
        p.impl_of_streamlet = advance().text;
      } else {
        error_here("expected streamlet name after 'impl of'");
      }
      if (check(TokenKind::kLess)) {
        p.impl_of_args = parse_template_args();
      }
    } else {
      error_here("expected parameter kind (int/float/string/bool/"
                 "clockdomain/type/impl of)");
      break;
    }
    params.push_back(std::move(p));
  } while (match(TokenKind::kComma));
  expect(TokenKind::kGreater, "to close template parameter list");
  return params;
}

std::vector<TemplateArg> Parser::parse_template_args() {
  std::vector<TemplateArg> args;
  if (!match(TokenKind::kLess)) return args;
  ++angle_depth_;
  if (!check(TokenKind::kGreater)) {
    do {
      TemplateArg a;
      a.loc = peek().loc;
      if (match(TokenKind::kKwType)) {
        a.kind = TemplateArg::Kind::kType;
        a.type = parse_type();
      } else if (match(TokenKind::kKwImpl)) {
        a.kind = TemplateArg::Kind::kImpl;
        if (check(TokenKind::kIdentifier)) {
          a.impl_name = advance().text;
        } else {
          error_here("expected impl name after 'impl'");
        }
      } else {
        a.kind = TemplateArg::Kind::kExpr;
        a.expr = parse_expr();
      }
      args.push_back(std::move(a));
    } while (match(TokenKind::kComma));
  }
  --angle_depth_;
  expect(TokenKind::kGreater, "to close template argument list");
  return args;
}

PortDecl Parser::parse_port() {
  PortDecl p;
  p.loc = peek().loc;
  if (check(TokenKind::kIdentifier)) {
    p.name = advance().text;
  } else {
    error_here("expected port name");
  }
  expect(TokenKind::kColon, "after port name");
  p.type = parse_type();
  if (match(TokenKind::kKwIn)) {
    p.dir = PortDir::kIn;
  } else if (check(TokenKind::kIdentifier) && peek().text == "out") {
    advance();
    p.dir = PortDir::kOut;
  } else {
    error_here("expected port direction 'in' or 'out'");
  }
  if (match(TokenKind::kLBracket)) {
    p.array_size = parse_expr();
    expect(TokenKind::kRBracket, "to close port array size");
  }
  if (match(TokenKind::kAt)) {
    if (check(TokenKind::kIdentifier)) {
      p.clock_domain = advance().text;
    } else {
      error_here("expected clock domain name after '@'");
    }
  }
  return p;
}

StreamletDecl Parser::parse_streamlet() {
  StreamletDecl d;
  d.loc = peek().loc;
  expect(TokenKind::kKwStreamlet, "");
  if (check(TokenKind::kIdentifier)) {
    d.name = advance().text;
  } else {
    error_here("expected streamlet name");
  }
  d.params = parse_template_params();
  expect(TokenKind::kLBrace, "to open port list");
  while (!check(TokenKind::kRBrace) && !check(TokenKind::kEnd)) {
    d.ports.push_back(parse_port());
    if (!match(TokenKind::kComma)) break;
  }
  expect(TokenKind::kRBrace, "to close port list");
  return d;
}

ImplDecl Parser::parse_impl() {
  ImplDecl d;
  d.loc = peek().loc;
  expect(TokenKind::kKwImpl, "");
  if (check(TokenKind::kIdentifier)) {
    d.name = advance().text;
  } else {
    error_here("expected impl name");
  }
  d.params = parse_template_params();
  expect(TokenKind::kKwOf, "after impl name");
  if (check(TokenKind::kIdentifier)) {
    d.of_streamlet = advance().text;
  } else {
    error_here("expected streamlet name after 'of'");
  }
  if (check(TokenKind::kLess)) {
    d.of_args = parse_template_args();
  }
  if (match(TokenKind::kAt)) {
    if (match(TokenKind::kKwExternal)) {
      d.external = true;
    } else {
      error_here("expected 'external' after '@'");
    }
  }
  expect(TokenKind::kLBrace, "to open impl body");
  d.body = parse_impl_body(&d);
  expect(TokenKind::kRBrace, "to close impl body");
  return d;
}

std::vector<ImplStmt> Parser::parse_impl_body(ImplDecl* impl_for_sim) {
  std::vector<ImplStmt> stmts;
  while (!check(TokenKind::kRBrace) && !check(TokenKind::kEnd)) {
    std::size_t before = pos_;
    switch (peek().kind) {
      case TokenKind::kKwInstance:
        stmts.push_back(parse_instance());
        break;
      case TokenKind::kKwFor:
        stmts.push_back(parse_for());
        break;
      case TokenKind::kKwIf:
        stmts.push_back(parse_if());
        break;
      case TokenKind::kKwAssert:
        stmts.push_back(parse_assert());
        break;
      case TokenKind::kKwConst:
        stmts.push_back(parse_local_const());
        break;
      case TokenKind::kKwSim:
        if (impl_for_sim != nullptr) {
          impl_for_sim->sim = parse_sim_block();
        } else {
          error_here("sim blocks are only allowed directly in an impl body");
          sync_to_stmt_end();
        }
        break;
      case TokenKind::kIdentifier:
        stmts.push_back(parse_connection());
        break;
      default:
        error_here("expected an impl statement, found " +
                   std::string(token_kind_name(peek().kind)));
        sync_to_stmt_end();
        break;
    }
    if (pos_ == before) advance();  // guarantee progress on bad input
  }
  return stmts;
}

ImplStmt Parser::parse_instance() {
  InstanceStmt s;
  s.loc = peek().loc;
  expect(TokenKind::kKwInstance, "");
  if (check(TokenKind::kIdentifier)) {
    s.name = advance().text;
  } else {
    error_here("expected instance name");
  }
  if (match(TokenKind::kLBracket)) {
    s.name_index = parse_expr();
    expect(TokenKind::kRBracket, "to close instance name index");
  }
  expect(TokenKind::kLParen, "after instance name");
  if (check(TokenKind::kIdentifier)) {
    s.impl_name = advance().text;
  } else {
    error_here("expected impl name in instance declaration");
  }
  if (check(TokenKind::kLess)) {
    s.args = parse_template_args();
  }
  expect(TokenKind::kRParen, "to close instance declaration");
  if (match(TokenKind::kLBracket)) {
    s.array_size = parse_expr();
    expect(TokenKind::kRBracket, "to close instance array size");
  }
  if (!match(TokenKind::kComma)) match(TokenKind::kSemicolon);
  return ImplStmt{std::move(s)};
}

PortRef Parser::parse_port_ref() {
  PortRef r;
  r.loc = peek().loc;
  std::string first;
  if (check(TokenKind::kIdentifier)) {
    first = advance().text;
  } else {
    error_here("expected port reference");
    return r;
  }
  ExprPtr first_index;
  if (match(TokenKind::kLBracket)) {
    first_index = parse_expr();
    expect(TokenKind::kRBracket, "to close index");
  }
  if (match(TokenKind::kDot)) {
    r.instance = std::move(first);
    r.instance_index = std::move(first_index);
    if (check(TokenKind::kIdentifier)) {
      r.port = advance().text;
    } else {
      error_here("expected port name after '.'");
    }
    if (match(TokenKind::kLBracket)) {
      r.port_index = parse_expr();
      expect(TokenKind::kRBracket, "to close port index");
    }
  } else {
    r.port = std::move(first);
    r.port_index = std::move(first_index);
  }
  return r;
}

ImplStmt Parser::parse_connection() {
  ConnectStmt s;
  s.loc = peek().loc;
  s.src = parse_port_ref();
  expect(TokenKind::kFatArrow, "in connection");
  s.dst = parse_port_ref();
  if (match(TokenKind::kAt)) {
    if (check(TokenKind::kIdentifier) && peek().text == "structural") {
      advance();
      s.structural = true;
    } else {
      error_here("expected 'structural' after '@' on a connection");
    }
  }
  if (!match(TokenKind::kComma)) match(TokenKind::kSemicolon);
  return ImplStmt{std::move(s)};
}

ImplStmt Parser::parse_for() {
  ForStmt s;
  s.loc = peek().loc;
  expect(TokenKind::kKwFor, "");
  if (check(TokenKind::kIdentifier)) {
    s.var = advance().text;
  } else {
    error_here("expected loop variable name");
  }
  expect(TokenKind::kKwIn, "in for statement");
  s.iterable = parse_expr();
  expect(TokenKind::kLBrace, "to open for body");
  s.body = parse_impl_body(nullptr);
  expect(TokenKind::kRBrace, "to close for body");
  return ImplStmt{std::move(s)};
}

ImplStmt Parser::parse_if() {
  IfStmt s;
  s.loc = peek().loc;
  expect(TokenKind::kKwIf, "");
  expect(TokenKind::kLParen, "after 'if'");
  s.cond = parse_expr();
  expect(TokenKind::kRParen, "to close if condition");
  expect(TokenKind::kLBrace, "to open if body");
  s.then_body = parse_impl_body(nullptr);
  expect(TokenKind::kRBrace, "to close if body");
  if (match(TokenKind::kKwElse)) {
    expect(TokenKind::kLBrace, "to open else body");
    s.else_body = parse_impl_body(nullptr);
    expect(TokenKind::kRBrace, "to close else body");
  }
  return ImplStmt{std::move(s)};
}

ImplStmt Parser::parse_assert() {
  AssertStmt s;
  s.loc = peek().loc;
  expect(TokenKind::kKwAssert, "");
  expect(TokenKind::kLParen, "after 'assert'");
  s.cond = parse_expr();
  if (match(TokenKind::kComma)) {
    if (check(TokenKind::kStringLiteral)) {
      s.message = advance().text;
    } else {
      error_here("expected string message in assert");
    }
  }
  expect(TokenKind::kRParen, "to close assert");
  expect(TokenKind::kSemicolon, "after assert");
  return ImplStmt{std::move(s)};
}

ImplStmt Parser::parse_local_const() {
  ConstDecl c = parse_const_decl();
  LocalConst l;
  l.name = std::move(c.name);
  l.declared_kind = c.declared_kind;
  l.init = std::move(c.init);
  l.loc = c.loc;
  return ImplStmt{std::move(l)};
}

SimBlock Parser::parse_sim_block() {
  SimBlock sim;
  sim.loc = peek().loc;
  expect(TokenKind::kKwSim, "");
  expect(TokenKind::kLBrace, "to open sim block");
  while (!check(TokenKind::kRBrace) && !check(TokenKind::kEnd)) {
    std::size_t before = pos_;
    if (match(TokenKind::kKwState)) {
      SimStateDecl st;
      st.loc = peek().loc;
      if (check(TokenKind::kIdentifier)) {
        st.name = advance().text;
      } else {
        error_here("expected state variable name");
      }
      expect(TokenKind::kEq, "in state declaration");
      if (check(TokenKind::kStringLiteral)) {
        st.initial = advance().text;
      } else {
        error_here("expected initial state string");
      }
      expect(TokenKind::kSemicolon, "after state declaration");
      sim.states.push_back(std::move(st));
    } else if (match(TokenKind::kKwOn)) {
      SimHandler h;
      h.loc = peek().loc;
      if (check(TokenKind::kIdentifier) && peek().text == "start") {
        advance();
      } else {
        do {
          if (!check(TokenKind::kIdentifier)) {
            error_here("expected port name in event expression");
            break;
          }
          std::string port = advance().text;
          expect(TokenKind::kDot, "after port name in event");
          if (check(TokenKind::kIdentifier) && peek().text == "receive") {
            advance();
          } else {
            error_here("expected 'receive' after '.' in event");
          }
          h.wait_ports.push_back(std::move(port));
        } while (match(TokenKind::kAmpAmp));
      }
      expect(TokenKind::kLBrace, "to open event handler");
      h.actions = parse_sim_actions();
      expect(TokenKind::kRBrace, "to close event handler");
      sim.handlers.push_back(std::move(h));
    } else {
      error_here("expected 'state' or 'on' in sim block");
      sync_to_stmt_end();
    }
    if (pos_ == before) advance();
  }
  expect(TokenKind::kRBrace, "to close sim block");
  return sim;
}

std::vector<SimAction> Parser::parse_sim_actions() {
  std::vector<SimAction> actions;
  while (!check(TokenKind::kRBrace) && !check(TokenKind::kEnd)) {
    std::size_t before = pos_;
    actions.push_back(parse_sim_action());
    if (pos_ == before) advance();
  }
  return actions;
}

SimAction Parser::parse_sim_action() {
  SimAction a;
  a.loc = peek().loc;
  if (match(TokenKind::kKwFor)) {
    ActFor n;
    if (check(TokenKind::kIdentifier)) {
      n.var = advance().text;
    } else {
      error_here("expected loop variable in sim for");
    }
    expect(TokenKind::kKwIn, "in sim for");
    n.iterable = parse_expr();
    expect(TokenKind::kLBrace, "to open sim for body");
    n.body = parse_sim_actions();
    expect(TokenKind::kRBrace, "to close sim for body");
    a.node = std::move(n);
    return a;
  }
  if (match(TokenKind::kKwIf)) {
    ActIf n;
    expect(TokenKind::kLParen, "after 'if'");
    n.cond = parse_expr();
    expect(TokenKind::kRParen, "to close condition");
    expect(TokenKind::kLBrace, "to open if body");
    n.then_body = parse_sim_actions();
    expect(TokenKind::kRBrace, "to close if body");
    if (match(TokenKind::kKwElse)) {
      expect(TokenKind::kLBrace, "to open else body");
      n.else_body = parse_sim_actions();
      expect(TokenKind::kRBrace, "to close else body");
    }
    a.node = std::move(n);
    return a;
  }
  if (match(TokenKind::kKwSet)) {
    ActSet n;
    if (check(TokenKind::kIdentifier)) {
      n.state_var = advance().text;
    } else {
      error_here("expected state variable after 'set'");
    }
    expect(TokenKind::kEq, "in set action");
    n.value = parse_expr();
    expect(TokenKind::kSemicolon, "after set action");
    a.node = std::move(n);
    return a;
  }
  if (check(TokenKind::kIdentifier)) {
    std::string verb = peek().text;
    if (verb == "ack" || verb == "send" || verb == "delay") {
      advance();
      expect(TokenKind::kLParen, "after action verb");
      if (verb == "delay") {
        ActDelay n;
        n.cycles = parse_expr();
        expect(TokenKind::kRParen, "to close delay");
        expect(TokenKind::kSemicolon, "after delay action");
        a.node = std::move(n);
        return a;
      }
      std::string port;
      if (check(TokenKind::kIdentifier)) {
        port = advance().text;
      } else {
        error_here("expected port name in action");
      }
      if (verb == "ack") {
        ActAck n;
        n.port = std::move(port);
        expect(TokenKind::kRParen, "to close ack");
        expect(TokenKind::kSemicolon, "after ack action");
        a.node = std::move(n);
        return a;
      }
      ActSend n;
      n.port = std::move(port);
      if (match(TokenKind::kComma)) {
        n.payload = parse_expr();
      }
      expect(TokenKind::kRParen, "to close send");
      expect(TokenKind::kSemicolon, "after send action");
      a.node = std::move(n);
      return a;
    }
  }
  error_here("expected a sim action (ack/send/delay/set/if)");
  sync_to_stmt_end();
  a.node = ActDelay{make_expr(a.loc, IntLit{0})};
  return a;
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

TypeExprPtr Parser::parse_type() {
  support::Loc loc = peek().loc;
  if (match(TokenKind::kKwNull)) {
    return make_type(loc, NullTypeExpr{});
  }
  if (match(TokenKind::kKwBit)) {
    expect(TokenKind::kLParen, "after 'Bit'");
    BitTypeExpr bit;
    bit.width = parse_expr();
    expect(TokenKind::kRParen, "to close Bit width");
    return make_type(loc, std::move(bit));
  }
  if (match(TokenKind::kKwStream)) {
    expect(TokenKind::kLParen, "after 'Stream'");
    StreamTypeExpr s;
    s.element = parse_type();
    while (match(TokenKind::kComma)) {
      if (!check(TokenKind::kIdentifier)) {
        error_here("expected stream option key (t/d/c/s/r/u)");
        break;
      }
      std::string key = advance().text;
      expect(TokenKind::kEq, "after stream option key");
      if (key == "t" || key == "throughput") {
        s.throughput = parse_expr();
      } else if (key == "d" || key == "dimension") {
        s.dimension = parse_expr();
      } else if (key == "c" || key == "complexity") {
        s.complexity = parse_expr();
      } else if (key == "s" || key == "synchronicity") {
        if (check(TokenKind::kIdentifier)) {
          std::string v = advance().text;
          if (v == "Sync") s.synchronicity = Synchronicity::kSync;
          else if (v == "Flatten") s.synchronicity = Synchronicity::kFlatten;
          else if (v == "Desync") s.synchronicity = Synchronicity::kDesync;
          else if (v == "FlatDesync")
            s.synchronicity = Synchronicity::kFlatDesync;
          else error_here("unknown synchronicity '" + v + "'");
        } else {
          error_here("expected synchronicity name");
        }
      } else if (key == "r" || key == "direction") {
        if (check(TokenKind::kIdentifier)) {
          std::string v = advance().text;
          if (v == "Forward") s.direction = StreamDir::kForward;
          else if (v == "Reverse") s.direction = StreamDir::kReverse;
          else error_here("unknown stream direction '" + v + "'");
        } else {
          error_here("expected stream direction name");
        }
      } else if (key == "u" || key == "user") {
        s.user = parse_type();
      } else {
        error_here("unknown stream option '" + key + "'");
        parse_expr();  // consume and discard
      }
    }
    expect(TokenKind::kRParen, "to close Stream type");
    return make_type(loc, std::move(s));
  }
  if (check(TokenKind::kIdentifier)) {
    NamedTypeExpr n;
    n.name = advance().text;
    return make_type(loc, std::move(n));
  }
  error_here("expected a type, found " +
             std::string(token_kind_name(peek().kind)));
  return make_type(loc, NullTypeExpr{});
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing, lowest first: range, ||, &&, ==, <,
// +, *, ** (right-assoc), unary, postfix).
// ---------------------------------------------------------------------------

ExprPtr Parser::parse_expr() { return parse_range(); }

ExprPtr Parser::parse_range() {
  ExprPtr lhs = parse_or();
  while (check(TokenKind::kThinArrow) || check(TokenKind::kDotDot)) {
    support::Loc loc = peek().loc;
    advance();
    ExprPtr rhs = parse_or();
    lhs = make_expr(loc,
                    Binary{BinaryOp::kRange, std::move(lhs), std::move(rhs)});
  }
  return lhs;
}

ExprPtr Parser::parse_or() {
  ExprPtr lhs = parse_and();
  while (check(TokenKind::kPipePipe)) {
    support::Loc loc = peek().loc;
    advance();
    ExprPtr rhs = parse_and();
    lhs =
        make_expr(loc, Binary{BinaryOp::kOr, std::move(lhs), std::move(rhs)});
  }
  return lhs;
}

ExprPtr Parser::parse_and() {
  ExprPtr lhs = parse_equality();
  while (check(TokenKind::kAmpAmp)) {
    support::Loc loc = peek().loc;
    advance();
    ExprPtr rhs = parse_equality();
    lhs =
        make_expr(loc, Binary{BinaryOp::kAnd, std::move(lhs), std::move(rhs)});
  }
  return lhs;
}

ExprPtr Parser::parse_equality() {
  ExprPtr lhs = parse_comparison();
  while (check(TokenKind::kEqEq) || check(TokenKind::kNotEq)) {
    support::Loc loc = peek().loc;
    BinaryOp op =
        advance().is(TokenKind::kEqEq) ? BinaryOp::kEq : BinaryOp::kNe;
    ExprPtr rhs = parse_comparison();
    lhs = make_expr(loc, Binary{op, std::move(lhs), std::move(rhs)});
  }
  return lhs;
}

ExprPtr Parser::parse_comparison() {
  ExprPtr lhs = parse_additive();
  for (;;) {
    TokenKind k = peek().kind;
    BinaryOp op;
    if (k == TokenKind::kLessEq) {
      op = BinaryOp::kLe;
    } else if (k == TokenKind::kGreaterEq) {
      op = BinaryOp::kGe;
    } else if (k == TokenKind::kLess && angle_depth_ == 0) {
      op = BinaryOp::kLt;
    } else if (k == TokenKind::kGreater && angle_depth_ == 0) {
      op = BinaryOp::kGt;
    } else {
      break;
    }
    support::Loc loc = peek().loc;
    advance();
    ExprPtr rhs = parse_additive();
    lhs = make_expr(loc, Binary{op, std::move(lhs), std::move(rhs)});
  }
  return lhs;
}

ExprPtr Parser::parse_additive() {
  ExprPtr lhs = parse_multiplicative();
  while (check(TokenKind::kPlus) || check(TokenKind::kMinus)) {
    support::Loc loc = peek().loc;
    BinaryOp op =
        advance().is(TokenKind::kPlus) ? BinaryOp::kAdd : BinaryOp::kSub;
    ExprPtr rhs = parse_multiplicative();
    lhs = make_expr(loc, Binary{op, std::move(lhs), std::move(rhs)});
  }
  return lhs;
}

ExprPtr Parser::parse_multiplicative() {
  ExprPtr lhs = parse_power();
  for (;;) {
    TokenKind k = peek().kind;
    BinaryOp op;
    if (k == TokenKind::kStar) {
      op = BinaryOp::kMul;
    } else if (k == TokenKind::kSlash) {
      op = BinaryOp::kDiv;
    } else if (k == TokenKind::kPercent) {
      op = BinaryOp::kMod;
    } else {
      break;
    }
    support::Loc loc = peek().loc;
    advance();
    ExprPtr rhs = parse_power();
    lhs = make_expr(loc, Binary{op, std::move(lhs), std::move(rhs)});
  }
  return lhs;
}

ExprPtr Parser::parse_power() {
  ExprPtr lhs = parse_unary();
  if (check(TokenKind::kStarStar)) {
    support::Loc loc = peek().loc;
    advance();
    ExprPtr rhs = parse_power();  // right associative
    return make_expr(loc,
                     Binary{BinaryOp::kPow, std::move(lhs), std::move(rhs)});
  }
  return lhs;
}

ExprPtr Parser::parse_unary() {
  support::Loc loc = peek().loc;
  if (match(TokenKind::kMinus)) {
    return make_expr(loc, Unary{UnaryOp::kNeg, parse_unary()});
  }
  if (match(TokenKind::kBang)) {
    return make_expr(loc, Unary{UnaryOp::kNot, parse_unary()});
  }
  return parse_postfix();
}

ExprPtr Parser::parse_postfix() {
  ExprPtr e = parse_primary();
  while (match(TokenKind::kLBracket)) {
    support::Loc loc = peek().loc;
    ExprPtr index = parse_expr();
    expect(TokenKind::kRBracket, "to close index");
    e = make_expr(loc, IndexExpr{std::move(e), std::move(index)});
  }
  return e;
}

ExprPtr Parser::parse_primary() {
  support::Loc loc = peek().loc;
  switch (peek().kind) {
    case TokenKind::kIntLiteral: {
      const Token& t = advance();
      return make_expr(loc, IntLit{t.int_value});
    }
    case TokenKind::kFloatLiteral: {
      const Token& t = advance();
      return make_expr(loc, FloatLit{t.float_value});
    }
    case TokenKind::kStringLiteral: {
      const Token& t = advance();
      return make_expr(loc, StringLit{t.text});
    }
    case TokenKind::kKwTrue:
      advance();
      return make_expr(loc, BoolLit{true});
    case TokenKind::kKwFalse:
      advance();
      return make_expr(loc, BoolLit{false});
    case TokenKind::kKwClockdomain:
      // `clockdomain("name" [, MHz])` is a builtin constructor call; the
      // keyword doubles as the callee name.
      if (peek(1).is(TokenKind::kLParen)) {
        advance();
        advance();
        Call call;
        call.callee = "clockdomain";
        int saved = angle_depth_;
        angle_depth_ = 0;
        if (!check(TokenKind::kRParen)) {
          do {
            call.args.push_back(parse_expr());
          } while (match(TokenKind::kComma));
        }
        angle_depth_ = saved;
        expect(TokenKind::kRParen, "to close clockdomain()");
        return make_expr(loc, std::move(call));
      }
      error_here("expected an expression, found 'clockdomain'");
      advance();
      return make_expr(loc, IntLit{0});
    case TokenKind::kIdentifier: {
      std::string name = advance().text;
      if (check(TokenKind::kLParen)) {
        advance();
        Call call;
        call.callee = std::move(name);
        // Calls reset angle suppression: parenthesized args may freely use
        // comparison operators even inside template argument lists.
        int saved = angle_depth_;
        angle_depth_ = 0;
        if (!check(TokenKind::kRParen)) {
          do {
            call.args.push_back(parse_expr());
          } while (match(TokenKind::kComma));
        }
        angle_depth_ = saved;
        expect(TokenKind::kRParen, "to close call");
        return make_expr(loc, std::move(call));
      }
      return make_expr(loc, Ident{std::move(name)});
    }
    case TokenKind::kLParen: {
      advance();
      int saved = angle_depth_;
      angle_depth_ = 0;
      ExprPtr e = parse_expr();
      angle_depth_ = saved;
      expect(TokenKind::kRParen, "to close parenthesized expression");
      return e;
    }
    case TokenKind::kLBracket: {
      advance();
      ArrayLit arr;
      int saved = angle_depth_;
      angle_depth_ = 0;
      if (!check(TokenKind::kRBracket)) {
        do {
          arr.elems.push_back(parse_expr());
        } while (match(TokenKind::kComma));
      }
      angle_depth_ = saved;
      expect(TokenKind::kRBracket, "to close array literal");
      return make_expr(loc, std::move(arr));
    }
    case TokenKind::kError: {
      const Token& t = advance();
      diags_.error("lexer", t.text, t.loc);
      return make_expr(loc, IntLit{0});
    }
    default:
      error_here("expected an expression, found " +
                 std::string(token_kind_name(peek().kind)));
      advance();
      return make_expr(loc, IntLit{0});
  }
}

SourceFile parse(std::string_view text, support::FileId file,
                 support::DiagnosticEngine& diags) {
  Parser parser(Lexer::tokenize(text, file), diags);
  return parser.parse_file();
}

}  // namespace tydi::lang
