#include "src/obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <mutex>

namespace tydi::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  buckets_.resize(bounds_.size() + 1);
}

void Histogram::observe(double v) {
  // Branchless-ish: lower_bound over the (short, fixed) bounds vector.
  // Values past the last bound land in the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_.add(v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i].get();
    out[i] = cum;
  }
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b = 0;
  count_ = 0;
  sum_.reset();
}

const std::vector<double>& default_ms_bounds() {
  static const std::vector<double> kBounds = {
      0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
      1000, 2500, 5000};
  return kBounds;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* g = new MetricsRegistry();  // immortal
  return *g;
}

namespace {

/// shared-lock find -> exclusive double-checked emplace. The map's node
/// stability keeps returned references valid across later insertions.
template <typename Map, typename Make>
typename Map::mapped_type::element_type& find_or_create(
    std::shared_mutex& mu, Map& map, std::string_view name, Make make) {
  {
    std::shared_lock lock(mu);
    auto it = map.find(name);
    if (it != map.end()) return *it->second;
  }
  std::unique_lock lock(mu);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), make()).first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return find_or_create(mu_, counters_, name,
                        [] { return std::make_unique<Counter>(); });
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return find_or_create(mu_, gauges_, name,
                        [] { return std::make_unique<Gauge>(); });
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const std::vector<double>& bounds) {
  return find_or_create(mu_, histograms_, name, [&] {
    return std::make_unique<Histogram>(bounds);
  });
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<std::int64_t>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string MetricsRegistry::render_json() const {
  std::shared_lock lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ':';
    out += std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ':';
    out += json_number(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ":{\"count\":";
    out += std::to_string(h->count());
    out += ",\"sum\":";
    out += json_number(h->sum());
    out += ",\"buckets\":[";
    const auto& bounds = h->bounds();
    const auto cum = h->bucket_counts();
    for (std::size_t i = 0; i < cum.size(); ++i) {
      if (i != 0) out += ',';
      out += "{\"le\":";
      out += i < bounds.size() ? json_number(bounds[i]) : std::string("\"inf\"");
      out += ",\"count\":";
      out += std::to_string(cum[i]);
      out += '}';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::reset() {
  std::shared_lock lock(mu_);  // values are atomic; the *maps* are stable
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace tydi::obs
