// Minimal JSON syntax validator (header-only, no DOM). Used by the obs
// golden-schema tests and the service tests to assert that METRICS /
// HEALTH / trace exports are well-formed without pulling in a JSON
// library — the repo's own emitters are hand-rolled, so the checker must
// be independent of them.
//
// `json_valid` accepts exactly the RFC 8259 grammar (objects, arrays,
// strings with escapes, numbers, true/false/null, arbitrary nesting).
// It does NOT validate semantics; pair it with plain substring checks
// for required keys.
#pragma once

#include <cctype>
#include <string_view>

namespace tydi::obs {

namespace json_detail {

struct Cursor {
  std::string_view s;
  std::size_t i = 0;

  [[nodiscard]] bool done() const { return i >= s.size(); }
  [[nodiscard]] char peek() const { return done() ? '\0' : s[i]; }
  void skip_ws() {
    while (!done() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                       s[i] == '\r')) {
      ++i;
    }
  }
  bool eat(char c) {
    if (peek() != c) return false;
    ++i;
    return true;
  }
};

inline bool parse_value(Cursor& c, int depth);

inline bool parse_string(Cursor& c) {
  if (!c.eat('"')) return false;
  while (!c.done()) {
    char ch = c.s[c.i++];
    if (ch == '"') return true;
    if (static_cast<unsigned char>(ch) < 0x20) return false;
    if (ch == '\\') {
      if (c.done()) return false;
      char esc = c.s[c.i++];
      if (esc == 'u') {
        for (int k = 0; k < 4; ++k) {
          if (c.done() || !std::isxdigit(static_cast<unsigned char>(
                              c.s[c.i++]))) {
            return false;
          }
        }
      } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                 esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
        return false;
      }
    }
  }
  return false;  // unterminated
}

inline bool parse_number(Cursor& c) {
  std::size_t start = c.i;
  c.eat('-');
  if (c.done() || !std::isdigit(static_cast<unsigned char>(c.peek()))) {
    return false;
  }
  if (c.eat('0')) {
    // no leading zeros
  } else {
    while (std::isdigit(static_cast<unsigned char>(c.peek()))) ++c.i;
  }
  if (c.eat('.')) {
    if (!std::isdigit(static_cast<unsigned char>(c.peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(c.peek()))) ++c.i;
  }
  if (c.peek() == 'e' || c.peek() == 'E') {
    ++c.i;
    if (c.peek() == '+' || c.peek() == '-') ++c.i;
    if (!std::isdigit(static_cast<unsigned char>(c.peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(c.peek()))) ++c.i;
  }
  return c.i > start;
}

inline bool parse_object(Cursor& c, int depth) {
  if (!c.eat('{')) return false;
  c.skip_ws();
  if (c.eat('}')) return true;
  while (true) {
    c.skip_ws();
    if (!parse_string(c)) return false;
    c.skip_ws();
    if (!c.eat(':')) return false;
    if (!parse_value(c, depth)) return false;
    c.skip_ws();
    if (c.eat('}')) return true;
    if (!c.eat(',')) return false;
  }
}

inline bool parse_array(Cursor& c, int depth) {
  if (!c.eat('[')) return false;
  c.skip_ws();
  if (c.eat(']')) return true;
  while (true) {
    if (!parse_value(c, depth)) return false;
    c.skip_ws();
    if (c.eat(']')) return true;
    if (!c.eat(',')) return false;
  }
}

inline bool parse_value(Cursor& c, int depth) {
  if (depth > 256) return false;
  c.skip_ws();
  switch (c.peek()) {
    case '{': return parse_object(c, depth + 1);
    case '[': return parse_array(c, depth + 1);
    case '"': return parse_string(c);
    case 't': return c.s.substr(c.i, 4) == "true" && ((c.i += 4), true);
    case 'f': return c.s.substr(c.i, 5) == "false" && ((c.i += 5), true);
    case 'n': return c.s.substr(c.i, 4) == "null" && ((c.i += 4), true);
    default: return parse_number(c);
  }
}

}  // namespace json_detail

/// True iff `text` is one complete, well-formed JSON value.
[[nodiscard]] inline bool json_valid(std::string_view text) {
  json_detail::Cursor c{text};
  if (!json_detail::parse_value(c, 0)) return false;
  c.skip_ws();
  return c.done();
}

}  // namespace tydi::obs
