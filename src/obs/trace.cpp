#include "src/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace tydi::obs {

namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

SpanTracer::SpanTracer(std::size_t ring_capacity)
    : id_(next_tracer_id()),
      ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

SpanTracer& SpanTracer::global() {
  static SpanTracer* g = new SpanTracer();  // immortal
  return *g;
}

std::int64_t SpanTracer::now_ns() {
  // Anchored at first use so exported timestamps are small positive
  // offsets (Chrome's viewer prefers that over raw steady_clock epochs).
  static const auto anchor = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - anchor)
      .count();
}

SpanTracer::Ring& SpanTracer::this_thread_ring() {
  // One-entry thread_local cache keyed by tracer identity: the global
  // tracer (and any single test tracer) hits the cache after the first
  // span; alternating tracers on one thread re-register, which only
  // costs the rings_mu_ lock.
  thread_local std::uint64_t cached_owner = 0;
  thread_local std::shared_ptr<Ring> cached_ring;
  if (cached_owner == id_ && cached_ring != nullptr) return *cached_ring;

  std::lock_guard lock(rings_mu_);
  auto ring = std::make_shared<Ring>(
      id_, next_tid_.fetch_add(1, std::memory_order_relaxed),
      ring_capacity_);
  rings_.push_back(ring);
  cached_owner = id_;
  cached_ring = std::move(ring);
  return *cached_ring;
}

void SpanTracer::record(std::string_view name, std::int64_t start_ns,
                        std::int64_t dur_ns, std::string args) {
  Ring& ring = this_thread_ring();
  SpanRecord rec;
  rec.name = std::string(name);
  rec.args = std::move(args);
  rec.start_ns = start_ns;
  rec.dur_ns = dur_ns;
  rec.tid = ring.tid;
  std::lock_guard lock(ring.mu);  // uncontended except during export
  if (ring.records.size() < ring.capacity) {
    ring.records.push_back(std::move(rec));
  } else {
    ring.records[ring.next] = std::move(rec);
    ring.next = (ring.next + 1) % ring.capacity;
  }
}

std::vector<SpanRecord> SpanTracer::snapshot() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard lock(rings_mu_);
    rings = rings_;
  }
  std::vector<SpanRecord> out;
  for (const auto& ring : rings) {
    std::lock_guard lock(ring->mu);
    out.insert(out.end(), ring->records.begin(), ring->records.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.name < b.name;
            });
  return out;
}

std::string SpanTracer::export_chrome_json() const {
  const std::vector<SpanRecord> spans = snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const SpanRecord& s : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_escaped(out, s.name);
    out += ",\"cat\":\"tydi\",\"ph\":\"X\",\"ts\":";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(s.start_ns) / 1000.0);
    out += buf;
    out += ",\"dur\":";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(s.dur_ns) / 1000.0);
    out += buf;
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(s.tid);
    if (!s.args.empty()) {
      out += ",\"args\":{";
      out += s.args;
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::size_t SpanTracer::size() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard lock(rings_mu_);
    rings = rings_;
  }
  std::size_t n = 0;
  for (const auto& ring : rings) {
    std::lock_guard lock(ring->mu);
    n += ring->records.size();
  }
  return n;
}

void SpanTracer::clear() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard lock(rings_mu_);
    rings = rings_;
  }
  for (const auto& ring : rings) {
    std::lock_guard lock(ring->mu);
    ring->records.clear();
    ring->next = 0;
  }
}

Span& Span::arg(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return *this;
  if (!args_.empty()) args_ += ',';
  append_escaped(args_, key);
  args_ += ':';
  append_escaped(args_, value);
  return *this;
}

Span& Span::arg(std::string_view key, std::int64_t value) {
  if (tracer_ == nullptr) return *this;
  if (!args_.empty()) args_ += ',';
  append_escaped(args_, key);
  args_ += ':';
  args_ += std::to_string(value);
  return *this;
}

}  // namespace tydi::obs
