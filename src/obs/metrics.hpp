// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms behind one thread-safe, stable-export facade.
//
// Every subsystem (driver, elab, ir, vhdl, sim, service) publishes its
// telemetry here under `tydi.<subsystem>.<name>` (see src/obs/README.md for
// the full naming scheme), so the daemon's METRICS verb, `tydic
// --metrics-out`, and the bench harnesses all read the *same* numbers — a
// BENCH_*.json figure and a live daemon snapshot can never disagree about
// what was counted.
//
// Concurrency model (the registry is hammered from compile workers, shard
// threads, and service connections at once):
//
//  - instrument *values* are relaxed atomics (`support::RelaxedCounter`
//    for counters/histogram buckets, a CAS-loop double for gauges and
//    histogram sums) — a hot-path increment is one relaxed fetch_add, no
//    lock;
//  - instrument *registration* takes the registry's shared_mutex: lookups
//    shared-lock, first-sight creation double-checks under the exclusive
//    lock (the same discipline as TemplateMemo / TypeLoweringCache).
//    Instruments are heap-allocated and never destroyed while the registry
//    lives, so a `Counter&` captured once (the intended pattern is a
//    function-local `static obs::Counter& c = ...;`) stays valid and
//    lock-free forever;
//  - export walks a `std::map` (already name-sorted) under the shared
//    lock, so `render_json()` output is byte-stable for a given set of
//    values.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/counters.hpp"

namespace tydi::obs {

/// Monotonic counter. Increments are relaxed atomics; `value()` is an
/// approximate snapshot (exact once writers quiesce).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  Counter& operator++() {
    ++value_;
    return *this;
  }
  Counter& operator+=(std::uint64_t n) {
    value_ += n;
    return *this;
  }
  [[nodiscard]] std::uint64_t value() const { return value_.get(); }
  void reset() { value_ = 0; }

 private:
  support::RelaxedCounter value_;
};

/// Last-write-wins instantaneous value (queue depth, hit rate, occupancy).
class Gauge {
 public:
  void set(double v) { bits_.store(encode(v), std::memory_order_relaxed); }
  void add(double delta) {
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(cur, encode(decode(cur) + delta),
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return decode(bits_.load(std::memory_order_relaxed));
  }
  void reset() { set(0.0); }

 private:
  static std::uint64_t encode(double v) {
    std::uint64_t u;
    static_assert(sizeof(u) == sizeof(v));
    __builtin_memcpy(&u, &v, sizeof(u));
    return u;
  }
  static double decode(std::uint64_t u) {
    double v;
    __builtin_memcpy(&v, &u, sizeof(v));
    return v;
  }
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram. `bounds` are ascending upper bounds; a value v
/// lands in the first bucket with v <= bound, or the implicit overflow
/// bucket past the last bound (so there are bounds.size()+1 buckets).
/// `observe` is lock-free: one relaxed bucket increment plus relaxed
/// count/sum updates.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  [[nodiscard]] std::uint64_t count() const { return count_.get(); }
  [[nodiscard]] double sum() const { return sum_.value(); }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative count of observations <= bounds()[i] (last entry == count()
  /// once writers quiesce). Sized bounds().size()+1.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  void reset();

 private:
  std::vector<double> bounds_;                   ///< ascending, immutable
  std::vector<support::RelaxedCounter> buckets_; ///< bounds_.size()+1
  support::RelaxedCounter count_;
  Gauge sum_;
};

/// Default latency bounds in milliseconds (sub-ms compile phases up to
/// multi-second batches).
[[nodiscard]] const std::vector<double>& default_ms_bounds();

/// The registry. Use `MetricsRegistry::global()` for process-wide
/// telemetry; tests construct their own instances for isolation.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (immortal; never destroyed, so instrument
  /// references taken from it are safe in static destructors).
  static MetricsRegistry& global();

  /// The instrument named `name`, created on first sight. References stay
  /// valid (and lock-free) for the registry's lifetime. Re-requesting a
  /// name always returns the same instrument; requesting an existing name
  /// as a different kind returns a distinct instrument per kind (names are
  /// namespaced by kind internally, so a misuse cannot alias storage).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` applies only on first creation (ignored on rehit; callers of
  /// the same histogram should agree on bounds).
  Histogram& histogram(std::string_view name,
                       const std::vector<double>& bounds = default_ms_bounds());

  /// Stable-sorted JSON snapshot:
  ///   {"counters":{...},"gauges":{...},"histograms":{"name":
  ///     {"count":N,"sum":S,"buckets":[{"le":B,"count":N},...]}}}
  /// Keys are name-sorted; doubles render with up to 6 significant
  /// decimals, integers as integers.
  [[nodiscard]] std::string render_json() const;

  /// Zeroes every registered instrument (bench/tests only — instruments
  /// stay registered so cached references remain valid).
  void reset();

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Formats a double the way render_json does (integral values without a
/// fraction, otherwise up to 6 significant decimals) — shared with HEALTH
/// rendering so the two surfaces agree.
[[nodiscard]] std::string json_number(double v);

}  // namespace tydi::obs
