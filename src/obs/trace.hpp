// Low-overhead span tracer with Chrome trace-event export.
//
// Spans are `(name, start_ns, dur_ns, tid, args)` records written into
// per-thread ring buffers and exported as Chrome trace-event JSON
// (`chrome://tracing` / `about:tracing` / Perfetto all load it). The
// tracer is disabled by default: a `Span` on a disabled tracer is one
// relaxed atomic load and no clock reads, so instrumentation can stay in
// the hot paths permanently (the bench_compile_perf `obs_overhead`
// section gates the enabled cost too).
//
// Concurrency model:
//  - each thread writes to its own ring (registered once, cached in a
//    thread_local), so recording never contends with other writers;
//  - a ring overwrites its oldest record when full (capacity is fixed at
//    registration) — tracing a long batch keeps the *latest* window;
//  - rings are shared_ptr-owned by the tracer AND the thread_local, so
//    records survive worker-thread exit and export after `join()` sees
//    everything;
//  - `export_chrome_json()` locks each ring briefly while copying; it
//    may run concurrently with recording (the snapshot is approximate,
//    like every live profiler).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tydi::obs {

struct SpanRecord {
  std::string name;
  std::string args;  ///< pre-rendered JSON object *body* ("" = no args)
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< tracer-assigned sequential thread id
};

class SpanTracer {
 public:
  /// `ring_capacity`: spans retained per thread before overwrite-oldest.
  explicit SpanTracer(std::size_t ring_capacity = 16384);
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// The process-wide tracer (immortal). Enabled by `tydic
  /// --trace-profile`, `tydid`'s trace flag, and the benches.
  static SpanTracer& global();

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since the process trace epoch (steady clock).
  [[nodiscard]] static std::int64_t now_ns();

  /// Appends a finished span to this thread's ring. Called by `Span`;
  /// callable directly for spans whose lifetime doesn't fit RAII.
  void record(std::string_view name, std::int64_t start_ns,
              std::int64_t dur_ns, std::string args = {});

  /// All retained spans, copied out and sorted by (start_ns, tid, name)
  /// for deterministic output.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Chrome trace-event JSON: {"traceEvents":[{"name","cat":"tydi",
  /// "ph":"X","ts":<us>,"dur":<us>,"pid":1,"tid",...},...]}.
  [[nodiscard]] std::string export_chrome_json() const;

  /// Total spans currently retained across all rings.
  [[nodiscard]] std::size_t size() const;

  /// Drops all retained spans (rings stay registered).
  void clear();

 private:
  struct Ring {
    explicit Ring(std::uint64_t owner, std::uint32_t tid, std::size_t cap)
        : owner_id(owner), tid(tid), capacity(cap) {}
    const std::uint64_t owner_id;  ///< tracer identity for tl cache checks
    const std::uint32_t tid;
    const std::size_t capacity;
    mutable std::mutex mu;  ///< writer is one thread; export also locks
    std::vector<SpanRecord> records;  ///< grows to capacity, then wraps
    std::size_t next = 0;             ///< overwrite cursor once full
  };

  Ring& this_thread_ring();

  const std::uint64_t id_;  ///< process-unique tracer identity
  const std::size_t ring_capacity_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> next_tid_{1};
  mutable std::mutex rings_mu_;
  std::vector<std::shared_ptr<Ring>> rings_;
};

/// RAII span: captures the clock on construction and records on
/// destruction. On a disabled tracer both ends are a relaxed load — no
/// clock reads, no allocation, no ring touch.
class Span {
 public:
  explicit Span(std::string_view name)
      : Span(SpanTracer::global(), name) {}
  Span(SpanTracer& tracer, std::string_view name) {
    if (tracer.enabled()) {
      tracer_ = &tracer;
      name_ = name;
      start_ns_ = SpanTracer::now_ns();
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (tracer_ != nullptr) {
      tracer_->record(name_, start_ns_,
                      SpanTracer::now_ns() - start_ns_, std::move(args_));
    }
  }

  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

  /// Attach `"key":<value>` args (no-ops when inactive, so arg building
  /// costs nothing on the disabled path).
  Span& arg(std::string_view key, std::string_view value);
  Span& arg(std::string_view key, std::int64_t value);
  Span& arg(std::string_view key, std::uint64_t value) {
    return arg(key, static_cast<std::int64_t>(value));
  }

 private:
  SpanTracer* tracer_ = nullptr;
  std::string name_;
  std::string args_;
  std::int64_t start_ns_ = 0;
};

}  // namespace tydi::obs
