// tydic — the Tydi-lang compiler CLI.
//
// Usage:
//   tydic --top <impl> [options] file1.td [file2.td ...]
//
// Options:
//   --top <name>           top-level impl to elaborate (required)
//   --no-stdlib            do not prepend the standard library
//   --no-sugar             disable duplicator/voider insertion
//   --emit-ir <path>       write Tydi-IR (default: stdout)
//   --emit-vhdl <path>     write generated VHDL
//   --emit-manifest <path> write the fletchgen reader manifest
//   --summary              print the design inventory
//   --timings              print per-phase wall clock (pipeline order),
//                          cache hit rates, and bytes emitted (from the
//                          process metrics registry)
//   --metrics-out <path>   write the metrics registry snapshot (counters /
//                          gauges / histograms, stable-sorted JSON) on exit
//   --trace-profile <path> enable span tracing and write a Chrome
//                          trace-event JSON (load in about:tracing) on exit
//   --sim                  simulate the elaborated design (generic stimuli
//                          on every top input) and print the report
//   --sim-shards <n>       simulation shards / worker threads (implies
//                          --sim; results are identical for any n)
//   --sim-packets <n>      packets per top input stimulus (default 256)
//   --sim-ack-mode <m>     cross-shard ack protocol: "exact" (default,
//                          byte-identical results) or "credit" (batched
//                          acks, functionally equivalent, much better
//                          scaling on saturated cut channels)
//   --sim-credit-window <n> send credits per cut channel in credit mode
//                          (default 8)
//   --sim-profile          run a short profiling pre-run and partition by
//                          measured per-component event counts instead of
//                          the degree heuristic
//   --trace-out <path>     record the packet trace and dump it as a binary
//                          columnar TYTR file (implies --sim)
//   --batch                compile the built-in TPC-H workload in one
//                          CompileSession (shared template memo + parse
//                          cache) and print per-query + aggregate timings
//   --batch-manifest <path> compile a custom job set instead: one
//                          "source_files top_name" per line ('#' comments;
//                          source_files is a comma-separated list compiled
//                          in order), all through one CompileSession
//   --batch-rounds <n>     repeat the batch n times in the same session
//                          (round 2+ shows the warm-cache behaviour)
//   --jobs <n>             batch worker threads (default 1). Entries and
//                          emitted bytes are identical for any n; only
//                          wall clock changes
//   --dump-tpch <dir>      write each built-in TPC-H query as <dir>/q<n>.td
//                          (Fletcher interfaces + query logic) plus a
//                          <dir>/manifest.txt batch manifest, then exit.
//                          Feeds the tydid smoke test and ad-hoc
//                          --batch-manifest runs
//   --sim-fault-seed <n>   deterministic fault-injection plan derived from
//                          one seed (delayed mailbox posts, barrier jitter,
//                          shard stalls, withheld credit flushes); results
//                          must match a fault-free run (implies --sim)
//   --sim-fault-plan <s>   explicit plan "seed=..,delay=..,jitter=..,
//                          stall=..,withhold=..,spin=..,hang=0|1"
//   --sim-watchdog-ms <ms> abort when no event is processed for <ms>
//                          (default 10000; 0 disables)
//   --sim-max-events <n>   abort after n processed events (0 = unlimited)
//   --sim-budget-ms <ms>   wall-clock budget for the run (0 = unlimited)
//   --sim-rss-mb <n>       resident-set budget in MiB (0 = unlimited)
//
// Exit codes (stable; see src/support/status.hpp): 0 ok, 1 unclassified,
// 2 usage, 3 io-error, 4 corrupt-data, 5 parse-error, 6 elab-error,
// 7 drc-error, 8 emit-error, 9 deadlock, 10 aborted, 11 internal.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "src/driver/compiler.hpp"
#include "src/fletcher/fletchgen.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/metrics.hpp"
#include "src/sim/trace.hpp"
#include "src/tpch/tpch.hpp"

namespace {

int usage() {
  std::cerr << "usage: tydic --top <impl> [--no-stdlib] [--no-sugar] "
               "[--emit-ir <path>] [--emit-vhdl <path>] "
               "[--emit-manifest <path>] [--summary] [--timings] "
               "[--sim] [--sim-shards <n>] [--sim-packets <n>] "
               "[--sim-ack-mode exact|credit] [--sim-credit-window <n>] "
               "[--sim-profile] [--sim-fault-seed <n>] "
               "[--sim-fault-plan <spec>] [--sim-watchdog-ms <ms>] "
               "[--sim-max-events <n>] [--sim-budget-ms <ms>] "
               "[--sim-rss-mb <n>] [--trace-out <path>] <file.td>...\n"
               "       tydic --batch [--batch-rounds <n>] [--jobs <n>]\n"
               "       tydic --batch-manifest <path> [--batch-rounds <n>] "
               "[--jobs <n>]\n"
               "       tydic --dump-tpch <dir>\n"
               "  (any mode also accepts --metrics-out <path> and "
               "--trace-profile <path>)\n";
  return 2;
}

/// Cache hit rates + bytes emitted, read back from the process metrics
/// registry (--timings). The same counters the daemon's METRICS verb
/// exports, so the CLI and the service can never disagree.
void print_cache_report(std::ostream& out) {
  auto& reg = tydi::obs::MetricsRegistry::global();
  auto rate = [&](const char* hits_name, const char* misses_name) {
    const std::uint64_t hits = reg.counter(hits_name).value();
    const std::uint64_t total = hits + reg.counter(misses_name).value();
    std::string s = total == 0
                        ? std::string("-")
                        : tydi::obs::json_number(
                              static_cast<double>(hits) / total);
    return s + " (" + std::to_string(hits) + "/" + std::to_string(total) +
           ")";
  };
  out << "caches: elab "
      << rate("tydi.elab.instantiation_hits", "tydi.elab.instantiation_misses")
      << " | parse "
      << rate("tydi.parse.cache_hits", "tydi.parse.cache_misses")
      << " | types "
      << rate("tydi.lower.type_cache_hits", "tydi.lower.type_cache_misses")
      << " | ports "
      << rate("tydi.vhdl.port_cache_hits", "tydi.vhdl.port_cache_misses")
      << "\n";
  out << "bytes: ir " << reg.counter("tydi.ir.bytes_emitted").value()
      << " | vhdl " << reg.counter("tydi.vhdl.bytes_emitted").value()
      << "\n";
}

int run_batch(int rounds, const std::string& manifest_path, int jobs) {
  tydi::driver::CompileSession session;
  std::vector<tydi::driver::BatchJob> jobs_list;
  if (manifest_path.empty()) {
    jobs_list = tydi::tpch::batch_jobs();
  } else {
    // Malformed lines become pre-failed jobs reported per entry below; only
    // an unreadable manifest is fatal here.
    tydi::support::Status loaded =
        tydi::driver::load_batch_manifest(manifest_path, jobs_list);
    if (!loaded.is_ok()) {
      std::cerr << "error: " << loaded.render() << "\n";
      return loaded.exit_code();
    }
    if (jobs_list.empty()) {
      std::cerr << "error: manifest " << manifest_path << " lists no jobs\n";
      return 2;
    }
  }
  tydi::driver::BatchOptions batch_options;
  batch_options.jobs = jobs;
  tydi::support::Status status = tydi::support::Status::ok();
  for (int round = 1; round <= rounds; ++round) {
    tydi::driver::BatchResult result =
        tydi::driver::compile_batch(session, jobs_list, batch_options);
    if (rounds > 1) {
      std::cout << "-- round " << round << (round == 1 ? " (cold)" : " (warm)")
                << "\n";
    }
    std::cout << result.render();
    if (status.is_ok()) status = result.status();
  }
  return status.exit_code();
}

// Writes the built-in (sugared) TPC-H workload into <dir>: the shared
// Fletcher table interfaces as fletcher.td, each query's logic as q<n>.td
// (each keeps its own `package` header, so they stay separate files — the
// driver prepends the stdlib at compile time), plus a manifest.txt whose
// lines are "fletcher.td,q<n>.td <top>" in the comma-separated multi-source
// form load_batch_manifest accepts. The dump lets external processes (the
// tydid smoke test, ad-hoc --batch-manifest runs) compile the exact
// workload without linking the tpch library.
int run_dump_tpch(const std::string& dir) {
  std::ofstream manifest(dir + "/manifest.txt", std::ios::binary);
  if (!manifest) {
    std::cerr << "error: cannot write " << dir << "/manifest.txt\n";
    return 3;
  }
  const std::string fletcher_path = dir + "/fletcher.td";
  {
    std::ofstream out(fletcher_path, std::ios::binary);
    if (!out) {
      std::cerr << "error: cannot write " << fletcher_path << "\n";
      return 3;
    }
    out << tydi::tpch::fletcher_source();
  }
  for (const tydi::tpch::QueryCase& query : tydi::tpch::queries()) {
    if (!query.note.empty()) continue;  // manifest jobs default to sugaring
    // "TPC-H 6" -> "q6.td"
    std::string digits;
    for (char c : query.id) {
      if (c >= '0' && c <= '9') digits += c;
    }
    const std::string path = dir + "/q" + digits + ".td";
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::cerr << "error: cannot write " << path << "\n";
      return 3;
    }
    out << query.source;
    manifest << fletcher_path << "," << path << " " << query.top_impl
             << "\n";
    std::cout << fletcher_path << "," << path << " " << query.top_impl
              << "\n";
  }
  return 0;
}

struct SimCliOptions {
  int shards = 1;
  int packets = 256;
  tydi::sim::AckMode ack_mode = tydi::sim::AckMode::kExact;
  int credit_window = 8;
  bool profile = false;
  std::string trace_out;
  tydi::sim::FaultPlan fault;
  double watchdog_ms = 10000.0;
  double budget_ms = 0.0;
  std::uint64_t max_events = 0;
  std::uint64_t rss_mb = 0;
};

int run_simulation(const tydi::driver::CompileResult& result,
                   const SimCliOptions& cli) {
  tydi::support::DiagnosticEngine diags;
  tydi::sim::Engine engine(result.design, diags);
  tydi::sim::SimOptions options;
  options.shards = cli.shards;
  options.ack_mode = cli.ack_mode;
  options.credit_window = cli.credit_window;
  options.fault = cli.fault;
  options.watchdog_timeout_ms = cli.watchdog_ms;
  options.wall_clock_budget_ms = cli.budget_ms;
  options.max_events = cli.max_events;
  options.rss_budget_mb = cli.rss_mb;
  if (options.fault.enabled()) {
    std::cerr << "fault plan: " << options.fault.render() << "\n";
  }
  // The report below never reads the trace; only --trace-out needs it.
  options.record_trace = !cli.trace_out.empty();
  options.stimuli = tydi::sim::generic_stimuli(result.design, cli.packets);
  if (cli.profile) {
    // Short profiling pre-run: measured per-component event counts replace
    // the partitioner's degree heuristic for the real run.
    tydi::sim::SimOptions pre = options;
    pre.shards = 1;
    pre.record_trace = false;
    pre.stimuli = tydi::sim::generic_stimuli(result.design,
                                             std::min(cli.packets, 64));
    tydi::sim::SimResult profile_run = engine.run(pre);
    options.component_weights.assign(profile_run.component_events.begin(),
                                     profile_run.component_events.end());
  }
  tydi::sim::SimResult sim_result = engine.run(options);
  std::cerr << diags.render();
  std::cout << sim_result.summary() << "\n"
            << tydi::sim::render_bottleneck_report(sim_result, 10);
  if (!cli.trace_out.empty()) {
    if (!tydi::sim::write_binary_trace(sim_result, cli.trace_out)) {
      std::cerr << "error: cannot write " << cli.trace_out << "\n";
      return 3;
    }
    std::cout << "trace: " << sim_result.trace.size() << " event(s) -> "
              << cli.trace_out << "\n";
  }
  // Distinct exit codes per failure class: deadlock (9) and watchdog /
  // budget abort (10) are different operational problems.
  tydi::support::Status status = sim_result.status();
  if (!status.is_ok()) std::cerr << "error: " << status.render() << "\n";
  return status.exit_code();
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "error: cannot write " << path << "\n";
    return false;
  }
  out << text;
  return true;
}

/// The real CLI body. The obs output paths are collected here and written
/// by main() once, after every mode (batch, sim, single compile) has
/// returned — so --metrics-out / --trace-profile capture the whole run
/// whatever path it took.
int run(int argc, char** argv, std::string& metrics_out,
        std::string& trace_profile) {
  tydi::driver::CompileOptions options;
  std::vector<tydi::driver::NamedSource> sources;
  std::string ir_path;
  std::string vhdl_path;
  std::string manifest_path;
  bool summary = false;
  bool timings = false;
  bool simulate = false;
  bool batch = false;
  int batch_rounds = 1;
  int batch_jobs = 1;
  std::string batch_manifest;
  std::string dump_tpch_dir;
  SimCliOptions sim_cli;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: missing argument for " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--top") {
      options.top = next("--top");
    } else if (arg == "--no-stdlib") {
      options.include_stdlib = false;
    } else if (arg == "--no-sugar") {
      options.sugaring = false;
    } else if (arg == "--emit-ir") {
      ir_path = next("--emit-ir");
    } else if (arg == "--emit-vhdl") {
      vhdl_path = next("--emit-vhdl");
    } else if (arg == "--emit-manifest") {
      manifest_path = next("--emit-manifest");
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--timings") {
      timings = true;
    } else if (arg == "--batch") {
      batch = true;
    } else if (arg == "--batch-manifest") {
      batch = true;
      batch_manifest = next("--batch-manifest");
    } else if (arg == "--batch-rounds") {
      batch = true;
      batch_rounds = std::atoi(next("--batch-rounds").c_str());
      if (batch_rounds < 1) batch_rounds = 1;
    } else if (arg == "--jobs") {
      batch_jobs = std::atoi(next("--jobs").c_str());
      if (batch_jobs < 1) batch_jobs = 1;
    } else if (arg == "--dump-tpch") {
      dump_tpch_dir = next("--dump-tpch");
    } else if (arg == "--sim") {
      simulate = true;
    } else if (arg == "--sim-shards") {
      simulate = true;
      sim_cli.shards = std::atoi(next("--sim-shards").c_str());
      if (sim_cli.shards < 1) sim_cli.shards = 1;
    } else if (arg == "--sim-packets") {
      simulate = true;
      sim_cli.packets = std::atoi(next("--sim-packets").c_str());
      if (sim_cli.packets < 1) sim_cli.packets = 1;
    } else if (arg == "--sim-ack-mode") {
      simulate = true;
      std::string mode = next("--sim-ack-mode");
      if (mode == "exact") {
        sim_cli.ack_mode = tydi::sim::AckMode::kExact;
      } else if (mode == "credit") {
        sim_cli.ack_mode = tydi::sim::AckMode::kCredit;
      } else {
        std::cerr << "error: unknown ack mode '" << mode
                  << "' (use exact or credit)\n";
        return 2;
      }
    } else if (arg == "--sim-credit-window") {
      // Sets the window only; the protocol is chosen by --sim-ack-mode
      // (an explicit "exact" must not be silently overridden).
      simulate = true;
      sim_cli.credit_window = std::atoi(next("--sim-credit-window").c_str());
      if (sim_cli.credit_window < 1) sim_cli.credit_window = 1;
    } else if (arg == "--sim-profile") {
      simulate = true;
      sim_cli.profile = true;
    } else if (arg == "--sim-fault-seed") {
      simulate = true;
      sim_cli.fault = tydi::sim::FaultPlan::from_seed(
          std::strtoull(next("--sim-fault-seed").c_str(), nullptr, 10));
    } else if (arg == "--sim-fault-plan") {
      simulate = true;
      std::string spec = next("--sim-fault-plan");
      std::string error;
      if (!tydi::sim::FaultPlan::parse(spec, sim_cli.fault, error)) {
        std::cerr << "error: bad --sim-fault-plan: " << error << "\n";
        return 2;
      }
    } else if (arg == "--sim-watchdog-ms") {
      simulate = true;
      sim_cli.watchdog_ms = std::atof(next("--sim-watchdog-ms").c_str());
      if (sim_cli.watchdog_ms < 0) sim_cli.watchdog_ms = 0;
    } else if (arg == "--sim-max-events") {
      simulate = true;
      sim_cli.max_events =
          std::strtoull(next("--sim-max-events").c_str(), nullptr, 10);
    } else if (arg == "--sim-budget-ms") {
      simulate = true;
      sim_cli.budget_ms = std::atof(next("--sim-budget-ms").c_str());
      if (sim_cli.budget_ms < 0) sim_cli.budget_ms = 0;
    } else if (arg == "--sim-rss-mb") {
      simulate = true;
      sim_cli.rss_mb =
          std::strtoull(next("--sim-rss-mb").c_str(), nullptr, 10);
    } else if (arg == "--trace-out") {
      simulate = true;
      sim_cli.trace_out = next("--trace-out");
    } else if (arg == "--metrics-out") {
      metrics_out = next("--metrics-out");
    } else if (arg == "--trace-profile") {
      trace_profile = next("--trace-profile");
      tydi::obs::SpanTracer::global().set_enabled(true);
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else {
      std::ifstream in(arg, std::ios::binary);
      if (!in) {
        std::cerr << "error: cannot read " << arg << "\n";
        return 2;
      }
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      sources.push_back(tydi::driver::NamedSource{arg, std::move(text)});
    }
  }
  if (!dump_tpch_dir.empty()) return run_dump_tpch(dump_tpch_dir);
  if (batch) {
    if (!sources.empty() || !options.top.empty()) {
      std::cerr << "error: --batch compiles the built-in TPC-H workload (or "
                   "the --batch-manifest job list) and takes no files or "
                   "--top\n";
      return 2;
    }
    const int code = run_batch(batch_rounds, batch_manifest, batch_jobs);
    // The batch renderer already prints per-query wall clock; --timings
    // adds the session-wide cache behaviour on top.
    if (timings) print_cache_report(std::cerr);
    return code;
  }
  if (sources.empty() || options.top.empty()) return usage();

  tydi::driver::CompileResult result = tydi::driver::compile(sources, options);
  std::cerr << result.report();
  if (!result.success()) {
    // Distinct exit code per failing pipeline phase (see header comment).
    std::cerr << "compilation failed\n";
    return result.status().exit_code();
  }
  if (timings) {
    std::cerr << "phases: " << result.phase_ms.render() << "\n";
    print_cache_report(std::cerr);
  }
  if (summary) std::cout << result.design.summary();
  if (!ir_path.empty()) {
    if (!write_file(ir_path, result.ir_text)) return 1;
  } else if (vhdl_path.empty() && !summary && !simulate) {
    std::cout << result.ir_text;
  }
  if (!vhdl_path.empty()) {
    if (!write_file(vhdl_path, result.vhdl_text)) return 1;
  }
  if (!manifest_path.empty()) {
    if (!write_file(manifest_path,
                    tydi::fletcher::generate_reader_manifest(result.ir))) {
      return 1;
    }
  }
  if (simulate) return run_simulation(result, sim_cli);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out;
  std::string trace_profile;
  const int code = run(argc, argv, metrics_out, trace_profile);
  // Obs outputs are written whatever `code` is — a failed or aborted run's
  // metrics and trace are exactly what a post-mortem needs. An unwritable
  // path degrades the exit code only if the run itself succeeded.
  int obs_code = 0;
  if (!metrics_out.empty() &&
      !write_file(metrics_out,
                  tydi::obs::MetricsRegistry::global().render_json() + "\n")) {
    obs_code = 3;
  }
  if (!trace_profile.empty() &&
      !write_file(trace_profile,
                  tydi::obs::SpanTracer::global().export_chrome_json() +
                      "\n")) {
    obs_code = 3;
  }
  return code != 0 ? code : obs_code;
}
