// tydic — the Tydi-lang compiler CLI.
//
// Usage:
//   tydic --top <impl> [options] file1.td [file2.td ...]
//
// Options:
//   --top <name>           top-level impl to elaborate (required)
//   --no-stdlib            do not prepend the standard library
//   --no-sugar             disable duplicator/voider insertion
//   --emit-ir <path>       write Tydi-IR (default: stdout)
//   --emit-vhdl <path>     write generated VHDL
//   --emit-manifest <path> write the fletchgen reader manifest
//   --summary              print the design inventory
//   --timings              print per-phase wall clock (pipeline order)
#include <fstream>
#include <iostream>

#include "src/driver/compiler.hpp"
#include "src/fletcher/fletchgen.hpp"

namespace {

int usage() {
  std::cerr << "usage: tydic --top <impl> [--no-stdlib] [--no-sugar] "
               "[--emit-ir <path>] [--emit-vhdl <path>] "
               "[--emit-manifest <path>] [--summary] [--timings] "
               "<file.td>...\n";
  return 2;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "error: cannot write " << path << "\n";
    return false;
  }
  out << text;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  tydi::driver::CompileOptions options;
  std::vector<tydi::driver::NamedSource> sources;
  std::string ir_path;
  std::string vhdl_path;
  std::string manifest_path;
  bool summary = false;
  bool timings = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: missing argument for " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--top") {
      options.top = next("--top");
    } else if (arg == "--no-stdlib") {
      options.include_stdlib = false;
    } else if (arg == "--no-sugar") {
      options.sugaring = false;
    } else if (arg == "--emit-ir") {
      ir_path = next("--emit-ir");
    } else if (arg == "--emit-vhdl") {
      vhdl_path = next("--emit-vhdl");
    } else if (arg == "--emit-manifest") {
      manifest_path = next("--emit-manifest");
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--timings") {
      timings = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else {
      std::ifstream in(arg, std::ios::binary);
      if (!in) {
        std::cerr << "error: cannot read " << arg << "\n";
        return 2;
      }
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      sources.push_back(tydi::driver::NamedSource{arg, std::move(text)});
    }
  }
  if (sources.empty() || options.top.empty()) return usage();

  tydi::driver::CompileResult result = tydi::driver::compile(sources, options);
  std::cerr << result.report();
  if (!result.success()) {
    std::cerr << "compilation failed\n";
    return 1;
  }
  if (timings) std::cerr << "phases: " << result.phase_ms.render() << "\n";
  if (summary) std::cout << result.design.summary();
  if (!ir_path.empty()) {
    if (!write_file(ir_path, result.ir_text)) return 1;
  } else if (vhdl_path.empty() && !summary) {
    std::cout << result.ir_text;
  }
  if (!vhdl_path.empty()) {
    if (!write_file(vhdl_path, result.vhdl_text)) return 1;
  }
  if (!manifest_path.empty()) {
    if (!write_file(manifest_path,
                    tydi::fletcher::generate_reader_manifest(result.ir))) {
      return 1;
    }
  }
  return 0;
}
