// tydic — the Tydi-lang compiler CLI.
//
// Usage:
//   tydic --top <impl> [options] file1.td [file2.td ...]
//
// Options:
//   --top <name>           top-level impl to elaborate (required)
//   --no-stdlib            do not prepend the standard library
//   --no-sugar             disable duplicator/voider insertion
//   --emit-ir <path>       write Tydi-IR (default: stdout)
//   --emit-vhdl <path>     write generated VHDL
//   --emit-manifest <path> write the fletchgen reader manifest
//   --summary              print the design inventory
//   --timings              print per-phase wall clock (pipeline order)
//   --sim                  simulate the elaborated design (generic stimuli
//                          on every top input) and print the report
//   --sim-shards <n>       simulation shards / worker threads (implies
//                          --sim; results are identical for any n)
//   --sim-packets <n>      packets per top input stimulus (default 256)
//   --batch                compile the built-in TPC-H workload in one
//                          CompileSession (shared template memo + parse
//                          cache) and print per-query + aggregate timings
//   --batch-rounds <n>     repeat the batch n times in the same session
//                          (round 2+ shows the warm-cache behaviour)
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "src/driver/compiler.hpp"
#include "src/fletcher/fletchgen.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/metrics.hpp"
#include "src/tpch/tpch.hpp"

namespace {

int usage() {
  std::cerr << "usage: tydic --top <impl> [--no-stdlib] [--no-sugar] "
               "[--emit-ir <path>] [--emit-vhdl <path>] "
               "[--emit-manifest <path>] [--summary] [--timings] "
               "[--sim] [--sim-shards <n>] [--sim-packets <n>] "
               "<file.td>...\n"
               "       tydic --batch [--batch-rounds <n>]\n";
  return 2;
}

int run_batch(int rounds) {
  tydi::driver::CompileSession session;
  const std::vector<tydi::driver::BatchJob> jobs = tydi::tpch::batch_jobs();
  bool ok = true;
  for (int round = 1; round <= rounds; ++round) {
    tydi::driver::BatchResult result =
        tydi::driver::compile_batch(session, jobs);
    if (rounds > 1) {
      std::cout << "-- round " << round << (round == 1 ? " (cold)" : " (warm)")
                << "\n";
    }
    std::cout << result.render();
    ok = ok && result.success();
  }
  return ok ? 0 : 1;
}

int run_simulation(const tydi::driver::CompileResult& result, int shards,
                   int packets) {
  tydi::support::DiagnosticEngine diags;
  tydi::sim::Engine engine(result.design, diags);
  tydi::sim::SimOptions options;
  options.shards = shards;
  options.record_trace = false;  // the report below never reads the trace
  options.stimuli = tydi::sim::generic_stimuli(result.design, packets);
  tydi::sim::SimResult sim_result = engine.run(options);
  std::cerr << diags.render();
  std::cout << sim_result.summary() << "\n"
            << tydi::sim::render_bottleneck_report(sim_result, 10);
  return sim_result.deadlock ? 1 : 0;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "error: cannot write " << path << "\n";
    return false;
  }
  out << text;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  tydi::driver::CompileOptions options;
  std::vector<tydi::driver::NamedSource> sources;
  std::string ir_path;
  std::string vhdl_path;
  std::string manifest_path;
  bool summary = false;
  bool timings = false;
  bool simulate = false;
  bool batch = false;
  int batch_rounds = 1;
  int sim_shards = 1;
  int sim_packets = 256;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: missing argument for " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--top") {
      options.top = next("--top");
    } else if (arg == "--no-stdlib") {
      options.include_stdlib = false;
    } else if (arg == "--no-sugar") {
      options.sugaring = false;
    } else if (arg == "--emit-ir") {
      ir_path = next("--emit-ir");
    } else if (arg == "--emit-vhdl") {
      vhdl_path = next("--emit-vhdl");
    } else if (arg == "--emit-manifest") {
      manifest_path = next("--emit-manifest");
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--timings") {
      timings = true;
    } else if (arg == "--batch") {
      batch = true;
    } else if (arg == "--batch-rounds") {
      batch = true;
      batch_rounds = std::atoi(next("--batch-rounds").c_str());
      if (batch_rounds < 1) batch_rounds = 1;
    } else if (arg == "--sim") {
      simulate = true;
    } else if (arg == "--sim-shards") {
      simulate = true;
      sim_shards = std::atoi(next("--sim-shards").c_str());
      if (sim_shards < 1) sim_shards = 1;
    } else if (arg == "--sim-packets") {
      simulate = true;
      sim_packets = std::atoi(next("--sim-packets").c_str());
      if (sim_packets < 1) sim_packets = 1;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else {
      std::ifstream in(arg, std::ios::binary);
      if (!in) {
        std::cerr << "error: cannot read " << arg << "\n";
        return 2;
      }
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      sources.push_back(tydi::driver::NamedSource{arg, std::move(text)});
    }
  }
  if (batch) {
    if (!sources.empty() || !options.top.empty()) {
      std::cerr << "error: --batch uses the built-in TPC-H workload and "
                   "takes no files or --top\n";
      return 2;
    }
    return run_batch(batch_rounds);
  }
  if (sources.empty() || options.top.empty()) return usage();

  tydi::driver::CompileResult result = tydi::driver::compile(sources, options);
  std::cerr << result.report();
  if (!result.success()) {
    std::cerr << "compilation failed\n";
    return 1;
  }
  if (timings) std::cerr << "phases: " << result.phase_ms.render() << "\n";
  if (summary) std::cout << result.design.summary();
  if (!ir_path.empty()) {
    if (!write_file(ir_path, result.ir_text)) return 1;
  } else if (vhdl_path.empty() && !summary && !simulate) {
    std::cout << result.ir_text;
  }
  if (!vhdl_path.empty()) {
    if (!write_file(vhdl_path, result.vhdl_text)) return 1;
  }
  if (!manifest_path.empty()) {
    if (!write_file(manifest_path,
                    tydi::fletcher::generate_reader_manifest(result.ir))) {
      return 1;
    }
  }
  if (simulate) return run_simulation(result, sim_shards, sim_packets);
  return 0;
}
