// tydid — the long-lived Tydi-lang compile daemon.
//
// One process, one driver::CompileSession: every request compiles against
// the same process-wide template memo and parse cache, so a fleet of
// clients gets warm-cache compiles without each paying the stdlib
// elaboration cost. Transport is an AF_UNIX stream socket with a
// newline-delimited protocol (see src/service/service.hpp and
// src/driver/README.md). Compile requests run on a fixed worker pool fed
// by a bounded two-class priority queue; past capacity the daemon sheds
// with exit code 12 (unavailable) and a retry-after-ms hint instead of
// queueing unboundedly — src/service/README.md documents the overload
// behaviour end to end.
//
// Usage:
//   tydid --socket <path> [--workers <n>] [--queue-capacity <n>]
//         [--max-connections <n>] [--drain-deadline-ms <ms>]
//         [--rss-shed-mb <mb>] [--default-budget-ms <ms>]
//         [--max-budget-ms <ms>] [--journal <path>] [--no-replay]
//         [--replay-budget-ms <ms>] [--snapshot-interval-ms <ms>]
//       run the daemon (blocks until a SHUTDOWN request or SIGINT/SIGTERM;
//       both drain in-flight work and unlink the socket before exiting).
//       With --journal the daemon records every successfully compiled key
//       in a crash-safe append-only journal and replays it on the next
//       start (as sheddable PRIO batch work, bounded by
//       --replay-budget-ms), so restarts serve warm. A torn or corrupt
//       journal recovers to its longest valid prefix and boots (partially)
//       cold — logged, never fatal. See src/service/README.md
//       ("Durability and warm restart").
//   tydid --socket <path> --request "<line>" [--retries <n>]
//         [--retry-base-ms <ms>] [--retry-seed <n>] [--deadline-ms <ms>]
//         [--prio <interactive|batch>]
//       client: send one request line, print the payload to stdout, exit
//       with the response's status code — the same stable 0-12 taxonomy as
//       tydic, so scripts can dispatch identically on local and daemon
//       compiles. Shed requests (exit 12) are retried up to --retries
//       times with capped exponential backoff, deterministic seeded
//       jitter, and the daemon's retry-after-ms hint as the floor.
//   tydid --socket <path> --batch-manifest <path> [--emit <vhdl|ir>]
//         [retry flags as above]
//       client: compile every manifest job ("source_file top" per line, `#`
//       comments) through the daemon as PRIO batch requests, one retry
//       loop per job; per-job summary to stderr, exit 0 only if all jobs
//       succeeded
//   tydid --socket <path> --shutdown
//       ask a running daemon to stop (client sugar for --request SHUTDOWN)
//
// Example session (client side):
//   tydid --socket /tmp/tydid.sock --request "TPCH 6 vhdl" > q6.vhdl
//   tydid --socket /tmp/tydid.sock --request "FILE my.td top_i vhdl 5000"
//   tydid --socket /tmp/tydid.sock --deadline-ms 2000 --request "TPCH 3 ir"
//   tydid --socket /tmp/tydid.sock --retries 5 --request STATS
//   tydid --socket /tmp/tydid.sock --request METRICS   # registry JSON
//   tydid --socket /tmp/tydid.sock --request HEALTH    # liveness JSON
//   tydid --socket /tmp/tydid.sock --shutdown
//
// METRICS returns the process obs::MetricsRegistry snapshot (counters,
// gauges, histograms under tydi.<subsystem>.*, stable key order); HEALTH
// returns a small liveness JSON (status, uptime_ms, in_flight, queue_depth,
// workers, draining, shed_total, requests, failures, memo_hit_rate,
// last_abort). Both execute inline — never queued — so they stay
// responsive while the worker pool is saturated.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/service/server.hpp"
#include "src/service/service.hpp"
#include "src/support/retry.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: tydid --socket <path> [--workers <n>] "
         "[--queue-capacity <n>] [--max-connections <n>]\n"
         "             [--drain-deadline-ms <ms>] [--rss-shed-mb <mb>]\n"
         "             [--default-budget-ms <ms>] [--max-budget-ms <ms>]\n"
         "             [--journal <path>] [--no-replay] "
         "[--replay-budget-ms <ms>]\n"
         "             [--snapshot-interval-ms <ms>]\n"
         "       tydid --socket <path> --request \"<request line>\"\n"
         "             [--retries <n>] [--retry-base-ms <ms>] "
         "[--retry-seed <n>]\n"
         "             [--deadline-ms <ms>] [--prio <interactive|batch>]\n"
         "       tydid --socket <path> --batch-manifest <path> "
         "[--emit <vhdl|ir>]\n"
         "       tydid --socket <path> --shutdown\n";
  return 2;
}

/// Builds the envelope prefix ("PRIO ... DEADLINE_MS ... ") for a client
/// request line; ATTEMPT is appended per-try by request_with_retry.
std::string envelope_prefix(const std::string& prio, double deadline_ms) {
  std::string prefix;
  if (!prio.empty()) prefix += "PRIO " + prio + " ";
  if (deadline_ms > 0.0) {
    std::ostringstream ms;
    ms << deadline_ms;
    prefix += "DEADLINE_MS " + ms.str() + " ";
  }
  return prefix;
}

/// One retried request against the daemon: payload to stdout (stderr on
/// failure), remote status as exit code; transport failures map to their
/// own taxonomy entry (kIoError etc.) like any local I/O problem.
int run_client(const std::string& socket_path, const std::string& line,
               const tydi::support::RetryPolicy& policy) {
  tydi::service::Response response;
  int attempts = 1;
  const tydi::support::Status transport = tydi::service::request_with_retry(
      socket_path, line, policy, response, &attempts);
  if (!transport.is_ok()) {
    std::cerr << "error: " << transport.render() << "\n";
    return transport.exit_code();
  }
  if (response.ok()) {
    std::cout << response.payload;
  } else {
    std::cerr << response.payload;
    // A shed response carries the daemon's own retry-after hint; surface
    // it on the final exhausted attempt so operators see *why* retries
    // stopped and when trying again is worthwhile — not just exit 12.
    if (attempts > 1) {
      std::cerr << "tydid: gave up after " << attempts << " attempt(s)";
      if (response.retry_after_ms > 0.0) {
        std::cerr << "; daemon suggests retrying in "
                  << static_cast<long long>(response.retry_after_ms + 0.5)
                  << " ms";
      }
      std::cerr << "\n";
    } else if (response.retry_after_ms > 0.0) {
      std::cerr << "tydid: daemon overloaded; retry in "
                << static_cast<long long>(response.retry_after_ms + 0.5)
                << " ms\n";
    }
  }
  return response.status.exit_code();
}

/// Client-side batch mode: every manifest job becomes a PRIO batch FILE
/// request with its own retry loop, so bulk traffic rides the daemon's
/// batch queue class and backs off when the daemon sheds.
int run_batch_client(const std::string& socket_path,
                     const std::string& manifest_path,
                     const std::string& emit, const std::string& deadline,
                     const tydi::support::RetryPolicy& policy) {
  std::ifstream manifest(manifest_path);
  if (!manifest) {
    std::cerr << "error: cannot read manifest " << manifest_path << "\n";
    return tydi::support::exit_code(tydi::support::StatusCode::kIoError);
  }
  std::size_t jobs = 0;
  std::size_t failed = 0;
  int first_failure_exit = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(manifest, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string source_path;
    std::string top;
    if (!(fields >> source_path)) continue;  // blank line
    if (source_path.front() == '#') continue;
    const std::string name =
        manifest_path + ":" + std::to_string(line_no);
    if (!(fields >> top)) {
      std::cerr << "FAIL " << name << ": expected \"source_file top\"\n";
      ++jobs;
      ++failed;
      if (first_failure_exit == 0) {
        first_failure_exit = tydi::support::exit_code(
            tydi::support::StatusCode::kCorruptData);
      }
      continue;
    }
    ++jobs;
    const std::string request_line = envelope_prefix("batch", 0.0) +
                                     deadline + "FILE " + source_path +
                                     " " + top + " " + emit;
    tydi::service::Response response;
    int attempts = 1;
    const tydi::support::Status transport =
        tydi::service::request_with_retry(socket_path, request_line, policy,
                                          response, &attempts);
    const bool ok = transport.is_ok() && response.ok();
    if (ok) {
      std::cerr << "ok   " << source_path << " " << top << " ("
                << response.payload.size() << " bytes";
      if (attempts > 1) std::cerr << ", " << attempts << " attempts";
      std::cerr << ")\n";
    } else {
      ++failed;
      std::cerr << "FAIL " << source_path << " " << top << ": "
                << (transport.is_ok() ? response.status.render()
                                      : transport.render())
                << "\n";
      if (first_failure_exit == 0) {
        first_failure_exit = transport.is_ok() ? response.status.exit_code()
                                               : transport.exit_code();
      }
    }
  }
  std::cerr << "tydid: batch " << (jobs - failed) << "/" << jobs
            << " job(s) succeeded\n";
  // Same convention as `tydic --batch`: the first failing job's
  // classification is the process exit code.
  return first_failure_exit;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string request_line;
  std::string manifest_path;
  std::string emit = "vhdl";
  std::string prio;
  double deadline_ms = 0.0;
  bool shutdown = false;
  tydi::service::ServiceConfig config;
  tydi::service::ServerConfig server_config;
  tydi::support::RetryPolicy retry;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: missing argument for " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next("--socket");
    } else if (arg == "--request") {
      request_line = next("--request");
    } else if (arg == "--batch-manifest") {
      manifest_path = next("--batch-manifest");
    } else if (arg == "--emit") {
      emit = next("--emit");
      if (emit != "vhdl" && emit != "ir") {
        std::cerr << "error: --emit expects vhdl|ir\n";
        return 2;
      }
    } else if (arg == "--shutdown") {
      shutdown = true;
    } else if (arg == "--default-budget-ms") {
      config.default_budget_ms = std::atof(next("--default-budget-ms").c_str());
      if (config.default_budget_ms < 0) config.default_budget_ms = 0;
    } else if (arg == "--max-budget-ms") {
      config.max_budget_ms = std::atof(next("--max-budget-ms").c_str());
      if (config.max_budget_ms < 0) config.max_budget_ms = 0;
    } else if (arg == "--workers") {
      config.workers = std::atoi(next("--workers").c_str());
    } else if (arg == "--queue-capacity") {
      const int capacity = std::atoi(next("--queue-capacity").c_str());
      config.queue_capacity =
          capacity > 0 ? static_cast<std::size_t>(capacity) : 1;
    } else if (arg == "--max-connections") {
      const int cap = std::atoi(next("--max-connections").c_str());
      server_config.max_connections =
          cap > 0 ? static_cast<std::size_t>(cap) : 0;
    } else if (arg == "--drain-deadline-ms") {
      config.drain_deadline_ms =
          std::atof(next("--drain-deadline-ms").c_str());
      if (config.drain_deadline_ms < 0) config.drain_deadline_ms = 0;
    } else if (arg == "--rss-shed-mb") {
      const long long mb = std::atoll(next("--rss-shed-mb").c_str());
      config.rss_shed_mb =
          mb > 0 ? static_cast<std::uint64_t>(mb) : 0;
    } else if (arg == "--journal") {
      config.journal_path = next("--journal");
    } else if (arg == "--no-replay") {
      config.replay = false;
    } else if (arg == "--replay-budget-ms") {
      config.replay_budget_ms = std::atof(next("--replay-budget-ms").c_str());
      if (config.replay_budget_ms < 0) config.replay_budget_ms = 0;
    } else if (arg == "--snapshot-interval-ms") {
      config.snapshot_interval_ms =
          std::atof(next("--snapshot-interval-ms").c_str());
      if (config.snapshot_interval_ms < 0) config.snapshot_interval_ms = 0;
    } else if (arg == "--retries") {
      retry.max_attempts = std::atoi(next("--retries").c_str());
    } else if (arg == "--retry-base-ms") {
      retry.base_ms = std::atof(next("--retry-base-ms").c_str());
      if (retry.base_ms < 0) retry.base_ms = 0;
    } else if (arg == "--retry-seed") {
      retry.seed = static_cast<std::uint64_t>(
          std::atoll(next("--retry-seed").c_str()));
    } else if (arg == "--deadline-ms") {
      deadline_ms = std::atof(next("--deadline-ms").c_str());
      if (deadline_ms < 0) deadline_ms = 0;
    } else if (arg == "--prio") {
      prio = next("--prio");
      if (prio != "interactive" && prio != "batch") {
        std::cerr << "error: --prio expects interactive|batch\n";
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else {
      std::cerr << "error: unknown argument '" << arg << "'\n";
      return 2;
    }
  }
  if (socket_path.empty()) return usage();
  if (shutdown && request_line.empty()) request_line = "SHUTDOWN";

  if (!manifest_path.empty()) {
    return run_batch_client(socket_path, manifest_path, emit,
                            envelope_prefix("", deadline_ms), retry);
  }
  if (!request_line.empty()) {
    return run_client(socket_path,
                      envelope_prefix(prio, deadline_ms) + request_line,
                      retry);
  }

  // Daemon mode.
  tydi::service::CompileService service(config);
  server_config.socket_path = socket_path;
  server_config.handle_signals = true;
  if (!config.journal_path.empty()) {
    tydi::service::warmup::CompileJournal* journal = service.journal();
    if (journal == nullptr) {
      std::cerr << "tydid: journal " << config.journal_path
                << " unusable; serving without durability\n";
    } else if (journal->recovered_corrupt()) {
      // The logged cold(ish) start: recovery kept the longest valid
      // prefix and dropped the rest. HEALTH reports it as kCorruptData
      // in journal_error; the daemon serves regardless.
      std::cerr << "tydid: journal " << config.journal_path
                << " recovered " << journal->recovered_records()
                << " record(s), dropped "
                << journal->recovery_dropped_bytes()
                << " corrupt tail byte(s); cold past the valid prefix\n";
    } else {
      std::cerr << "tydid: journal " << config.journal_path
                << " recovered " << journal->recovered_records()
                << " record(s)\n";
    }
  }
  service.start_replay();
  std::cerr << "tydid: serving on " << socket_path << " ("
            << service.workers() << " workers, queue capacity "
            << config.queue_capacity << ")\n";
  tydi::support::Status status = tydi::service::serve(service, server_config);
  if (!status.is_ok()) {
    std::cerr << "error: " << status.render() << "\n";
    return status.exit_code();
  }
  std::cerr << "tydid: shut down after " << service.requests_served()
            << " request(s), " << service.requests_shed() << " shed\n";
  return 0;
}
