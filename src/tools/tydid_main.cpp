// tydid — the long-lived Tydi-lang compile daemon.
//
// One process, one driver::CompileSession: every request compiles against
// the same process-wide template memo and parse cache, so a fleet of
// clients gets warm-cache compiles without each paying the stdlib
// elaboration cost. Transport is an AF_UNIX stream socket with a
// newline-delimited protocol (see src/service/service.hpp and
// src/driver/README.md).
//
// Usage:
//   tydid --socket <path> [--default-budget-ms <ms>] [--max-budget-ms <ms>]
//       run the daemon (blocks until a SHUTDOWN request)
//   tydid --socket <path> --request "<line>"
//       one-shot client: send one request line, print the payload to
//       stdout, exit with the response's status code — the same stable
//       0-11 taxonomy as tydic, so scripts can dispatch identically on
//       local and daemon compiles
//   tydid --socket <path> --shutdown
//       ask a running daemon to stop (client sugar for --request SHUTDOWN)
//
// Example session (client side):
//   tydid --socket /tmp/tydid.sock --request "TPCH 6 vhdl" > q6.vhdl
//   tydid --socket /tmp/tydid.sock --request "FILE my.td top_i vhdl 5000"
//   tydid --socket /tmp/tydid.sock --request STATS
//   tydid --socket /tmp/tydid.sock --request METRICS   # registry JSON
//   tydid --socket /tmp/tydid.sock --request HEALTH    # uptime/in-flight
//   tydid --socket /tmp/tydid.sock --shutdown
//
// METRICS returns the process obs::MetricsRegistry snapshot (counters,
// gauges, histograms under tydi.<subsystem>.*, stable key order); HEALTH
// returns a small liveness JSON (status, uptime_ms, in_flight, requests,
// failures, memo_hit_rate, last_abort). Both are safe to poll while
// compiles are in flight.
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/service/server.hpp"
#include "src/service/service.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: tydid --socket <path> [--default-budget-ms <ms>] "
         "[--max-budget-ms <ms>]\n"
         "       tydid --socket <path> --request \"<request line>\"\n"
         "       tydid --socket <path> --shutdown\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string request_line;
  bool shutdown = false;
  tydi::service::ServiceConfig config;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "error: missing argument for " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next("--socket");
    } else if (arg == "--request") {
      request_line = next("--request");
    } else if (arg == "--shutdown") {
      shutdown = true;
    } else if (arg == "--default-budget-ms") {
      config.default_budget_ms = std::atof(next("--default-budget-ms").c_str());
      if (config.default_budget_ms < 0) config.default_budget_ms = 0;
    } else if (arg == "--max-budget-ms") {
      config.max_budget_ms = std::atof(next("--max-budget-ms").c_str());
      if (config.max_budget_ms < 0) config.max_budget_ms = 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else {
      std::cerr << "error: unknown argument '" << arg << "'\n";
      return 2;
    }
  }
  if (socket_path.empty()) return usage();
  if (shutdown && request_line.empty()) request_line = "SHUTDOWN";

  if (!request_line.empty()) {
    // Client mode: one request, payload to stdout, remote status as exit
    // code (transport failures are kIoError like any local I/O problem).
    tydi::service::Response response;
    tydi::support::Status transport =
        tydi::service::request(socket_path, request_line, response);
    if (!transport.is_ok()) {
      std::cerr << "error: " << transport.render() << "\n";
      return transport.exit_code();
    }
    if (response.ok()) {
      std::cout << response.payload;
    } else {
      std::cerr << response.payload;
    }
    return response.status.exit_code();
  }

  // Daemon mode.
  tydi::service::CompileService service(config);
  tydi::service::ServerConfig server_config;
  server_config.socket_path = socket_path;
  std::cerr << "tydid: serving on " << socket_path << "\n";
  tydi::support::Status status = tydi::service::serve(service, server_config);
  if (!status.is_ok()) {
    std::cerr << "error: " << status.render() << "\n";
    return status.exit_code();
  }
  std::cerr << "tydid: shut down after " << service.requests_served()
            << " request(s)\n";
  return 0;
}
