// The Sec. IV-B parallelize example, compiled AND simulated.
//
// A processing unit with an 8-cycle service time cannot sustain one packet
// per cycle alone; wrapping it in `parallelize_i<.., channel>` restores the
// full input rate once channel = 8. This example sweeps the channel count
// and prints the measured throughput plus the simulator's bottleneck
// analysis for an undersized configuration (Sec. V-B).
#include <iostream>

#include "src/driver/compiler.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/metrics.hpp"
#include "src/support/text.hpp"

namespace {

std::string source_for(int channels) {
  std::string source = R"tydi(
package partest;

type t_data = Stream(Bit(64), d=1, c=2);

// An adder with an 8-cycle service time (7 compute + 1 handshake cycles).
impl pu_adder of process_unit_s<type t_data, type t_data> @ external {
  sim {
    state s = "idle";
    on in_.receive {
      set s = "busy";
      delay(7);
      send(out);
      ack(in_);
      set s = "idle";
    }
  }
}

streamlet partest_top_s {
  feed: t_data in,
  result: t_data out,
}

impl partest_top of partest_top_s {
  instance par(parallelize_i<type t_data, type t_data, impl pu_adder, @CH@>),
  feed => par.in_,
  par.out => result,
}
)tydi";
  std::string needle = "@CH@";
  source.replace(source.find(needle), needle.size(),
                 std::to_string(channels));
  return source;
}

tydi::sim::SimResult run(int channels, int packets, int shards = 1) {
  tydi::driver::CompileOptions options;
  options.top = "partest_top";
  options.emit_vhdl = false;
  tydi::driver::CompileResult compiled =
      tydi::driver::compile_source(source_for(channels), options);
  if (!compiled.success()) {
    std::cerr << compiled.report();
    std::exit(1);
  }
  tydi::support::DiagnosticEngine diags;
  tydi::sim::Engine engine(compiled.design, diags);
  tydi::sim::SimOptions sim_options;
  sim_options.max_time_ns = 1.0e7;
  sim_options.shards = shards;
  tydi::sim::Stimulus stim;
  stim.port = "feed";
  for (int i = 0; i < packets; ++i) {
    stim.packets.emplace_back(10.0 * i,
                              tydi::sim::Packet{i, i == packets - 1});
  }
  sim_options.stimuli.push_back(std::move(stim));
  return engine.run(sim_options);
}

}  // namespace

int main() {
  std::cout << "parallelize<pu_adder, channel> throughput sweep "
               "(input rate = 1 packet/cycle, 10 ns cycle)\n\n";
  tydi::support::TextTable table;
  table.header({"channels", "packets/cycle", "of input rate"});
  for (int channels : {1, 2, 4, 6, 8, 10, 12}) {
    tydi::sim::SimResult result = run(channels, 256);
    double per_cycle = result.throughput("result") * 10.0;
    table.row({std::to_string(channels),
               tydi::support::format_fixed(per_cycle, 3),
               tydi::support::format_fixed(100.0 * per_cycle, 1) + " %"});
  }
  std::cout << table.render() << "\n";

  std::cout << "Bottleneck analysis for channel = 2 (undersized):\n";
  tydi::sim::SimResult undersized = run(2, 256);
  std::cout << tydi::sim::render_bottleneck_report(undersized, 5);

  // The sharded engine (src/sim/shard/) partitions the flattened design
  // over worker threads; results are byte-identical for any shard count.
  std::cout << "\nSharded run check (4 shards vs single queue): ";
  tydi::sim::SimResult sharded = run(8, 256, /*shards=*/4);
  tydi::sim::SimResult reference = run(8, 256);
  std::string why;
  if (!tydi::sim::results_identical(reference, sharded, &why)) {
    std::cout << "MISMATCH (" << why << ")\n";
    return 1;
  }
  std::cout << "identical (" << sharded.events_processed << " events)\n";
  return 0;
}
