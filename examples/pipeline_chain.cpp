// A generic pipeline template: chain `n` instances of any stage impl
// (demonstrates `impl of <streamlet>` template parameters combined with
// instance arrays and the generative for — the Sec. IV-B machinery beyond
// the paper's parallelize example). The pipeline is compiled to VHDL and
// simulated to measure its fill latency.
#include <iostream>

#include "src/driver/compiler.hpp"
#include "src/sim/engine.hpp"
#include "src/support/text.hpp"

namespace {

std::string source_for(int depth) {
  std::string source = R"tydi(
package pipedemo;

type t_word = Stream(Bit(32), d=1, c=2);

// Any single-in single-out component can be a stage.
streamlet stage_s<T: type> { in_: T in, out: T out, }

// The generic pipeline: n copies of `stage` chained head to tail.
impl pipeline_i<T: type, stage: impl of stage_s, n: int> of stage_s<type T> {
  instance st(stage) [n],
  in_ => st[0].in_,
  for i in 0->n-1 {
    st[i].out => st[i+1].in_,
  }
  st[n-1].out => out,
}

// A concrete 2-cycle stage, described by simulation code.
impl reg_stage of stage_s<type t_word> @ external {
  sim {
    on in_.receive {
      delay(2);
      send(out);
      ack(in_);
    }
  }
}

streamlet demo_s { feed: t_word in, drained: t_word out, }
impl demo_top of demo_s {
  instance pipe(pipeline_i<type t_word, impl reg_stage, @N@>),
  feed => pipe.in_,
  pipe.out => drained,
}
)tydi";
  std::string needle = "@N@";
  source.replace(source.find(needle), needle.size(), std::to_string(depth));
  return source;
}

}  // namespace

int main() {
  std::cout << "pipeline_i<reg_stage, n>: fill latency vs depth "
               "(2-cycle stages, 10 ns cycle)\n\n";
  tydi::support::TextTable table;
  table.header({"depth", "first packet out (ns)", "VHDL entities"});
  for (int depth : {1, 2, 4, 8}) {
    tydi::driver::CompileOptions options;
    options.top = "demo_top";
    tydi::driver::CompileResult compiled =
        tydi::driver::compile_source(source_for(depth), options);
    if (!compiled.success()) {
      std::cerr << compiled.report();
      return 1;
    }
    std::size_t entities = 0;
    for (std::size_t pos = compiled.vhdl_text.find("\nentity ");
         pos != std::string::npos;
         pos = compiled.vhdl_text.find("\nentity ", pos + 1)) {
      ++entities;
    }

    tydi::support::DiagnosticEngine diags;
    tydi::sim::Engine engine(compiled.design, diags);
    tydi::sim::SimOptions sim_options;
    tydi::sim::Stimulus stim;
    stim.port = "feed";
    for (int i = 0; i < 8; ++i) {
      stim.packets.emplace_back(10.0 * i, tydi::sim::Packet{i, i == 7});
    }
    sim_options.stimuli.push_back(std::move(stim));
    tydi::sim::SimResult result = engine.run(sim_options);
    const auto& out = result.top_outputs.at("drained");
    if (out.empty()) {
      std::cerr << "no output packets at depth " << depth << "\n";
      return 1;
    }
    table.row({std::to_string(depth),
               tydi::support::format_fixed(out.front().first, 1),
               std::to_string(entities)});
  }
  std::cout << table.render();
  std::cout << "\nfill latency grows linearly with depth; every depth is one "
               "template instantiation of the same pipeline_i source.\n";
  return 0;
}
