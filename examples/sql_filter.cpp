// The Sec. IV-A motivating example: hardware for the SQL predicate
//
//   where p_container in ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
//
// Four comparator instances are generated from a string array with the
// generative `for` syntax and reduced by a 4-port logical or. The container
// column is consumed four times, so sugaring inserts a duplicator
// automatically (Fig. 4).
#include <iostream>

#include "src/driver/compiler.hpp"

namespace {

constexpr std::string_view kSource = R"tydi(
package sqlfilter;

type t_container = Stream(Bit(80), d=1, c=2);

streamlet in_list_s {
  container: t_container in,
  matched: std_bool out,
}

impl in_list of in_list_s {
  const values = ["MED BAG", "MED BOX", "MED PKG", "MED PACK"];
  instance any_of(logic_or_i<type std_bool, 4>),
  for i in 0->4 {
    instance cmp[i](const_compare_i<type t_container, type std_bool, values[i], "==">),
    container => cmp[i].in_,
    cmp[i].out => any_of.in_[i],
  }
  any_of.out => matched,
}
)tydi";

}  // namespace

int main() {
  tydi::driver::CompileOptions options;
  options.top = "in_list";

  tydi::driver::CompileResult result =
      tydi::driver::compile_source(std::string(kSource), options);
  if (!result.success()) {
    std::cerr << "compilation failed:\n" << result.report();
    return 1;
  }

  std::cout << result.design.summary() << "\n";
  std::cout << result.sugar_stats.summary() << "\n\n";
  std::cout << "DRC: "
            << (result.drc_report.clean() ? "clean" : "violations!") << "\n\n";
  std::cout << result.ir_text;
  return result.drc_report.clean() ? 0 : 1;
}
