// Testbench generation (Sec. V-C): simulate a design once, record the
// boundary trace, and emit both a Tydi-IR testbench and a VHDL testbench
// that replays the recorded inputs and asserts the recorded outputs.
#include <iostream>

#include "src/driver/compiler.hpp"
#include "src/sim/engine.hpp"
#include "src/tb/testbench.hpp"

namespace {

constexpr std::string_view kSource = R"tydi(
package tbdemo;

type t_word = Stream(Bit(32), d=1, c=2);

// A doubling stage described by simulation code.
impl doubler_i of process_unit_s<type t_word, type t_word> @ external {
  sim {
    on in_.receive {
      delay(2);
      send(out, payload * 2);
      ack(in_);
    }
  }
}

streamlet tb_top_s {
  numbers: t_word in,
  doubled: t_word out,
}

impl tb_top of tb_top_s {
  instance stage(doubler_i),
  numbers => stage.in_,
  stage.out => doubled,
}
)tydi";

}  // namespace

int main() {
  tydi::driver::CompileOptions options;
  options.top = "tb_top";
  tydi::driver::CompileResult compiled =
      tydi::driver::compile_source(std::string(kSource), options);
  if (!compiled.success()) {
    std::cerr << compiled.report();
    return 1;
  }

  tydi::support::DiagnosticEngine diags;
  tydi::sim::Engine engine(compiled.design, diags);
  tydi::sim::SimOptions sim_options;
  tydi::sim::Stimulus stim;
  stim.port = "numbers";
  for (int i = 1; i <= 5; ++i) {
    stim.packets.emplace_back(20.0 * i, tydi::sim::Packet{i, i == 5});
  }
  sim_options.stimuli.push_back(std::move(stim));
  tydi::sim::SimResult result = engine.run(sim_options);

  std::cout << "=== simulation ===\n" << result.summary() << "\n";

  tydi::tb::TestbenchOptions tb_options;
  tb_options.name = "tb_doubler";
  std::cout << "=== Tydi-IR testbench ===\n"
            << tydi::tb::emit_ir_testbench(compiled.ir, result, tb_options)
            << "\n";
  std::cout << "=== VHDL testbench ===\n"
            << tydi::tb::emit_vhdl_testbench(compiled.ir, result,
                                             tb_options);
  return 0;
}
