// Quickstart: compile a small Tydi-lang design to Tydi-IR and VHDL.
//
// The design is the paper's Sec. IV-B adder interface: a Group of two
// 32-bit operands streams into an adder, a result Group streams out.
// Demonstrates: logical types (Group/Bit/Stream), type aliases, streamlets,
// impls, the compile pipeline, and inspecting the result.
#include <iostream>

#include "src/driver/compiler.hpp"

namespace {

constexpr std::string_view kSource = R"tydi(
package quickstart;

// Paper Sec. IV-B: the adder's input/result types.
Group AdderInput {
  data0: Bit(32),
  data1: Bit(32),
}
type Input = Stream(AdderInput, d=1, c=2);

Group Bit32Result {
  data: Bit(32),
  overflow: Bit(1),
}
type Result = Stream(Bit32Result, d=1, c=2);

// The adder itself is a standard-library unary op instance.
streamlet adder_top_s {
  operands: Input in,
  sum: Result out,
}

impl adder_top of adder_top_s {
  instance add(adder_i<type Input, type Result>),
  operands => add.in_,
  add.out => sum,
}
)tydi";

}  // namespace

int main() {
  tydi::driver::CompileOptions options;
  options.top = "adder_top";

  tydi::driver::CompileResult result =
      tydi::driver::compile_source(std::string(kSource), options);

  if (!result.success()) {
    std::cerr << "compilation failed:\n" << result.report();
    return 1;
  }

  std::cout << "=== design summary ===\n" << result.design.summary() << "\n";
  std::cout << "=== Tydi-IR ===\n" << result.ir_text << "\n";
  std::cout << "=== VHDL (first 40 lines) ===\n";
  std::size_t lines = 0;
  for (std::size_t i = 0; i < result.vhdl_text.size() && lines < 40; ++i) {
    std::cout << result.vhdl_text[i];
    if (result.vhdl_text[i] == '\n') ++lines;
  }
  std::cout << "...\n";
  return 0;
}
