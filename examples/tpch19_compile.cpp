// Compiles TPC-H query 19 (the paper's Sec. VI walkthrough) to VHDL and
// prints its Table IV row: LoC of the query logic, the Fletcher part, the
// standard library, the generated VHDL, and the two ratios.
#include <fstream>
#include <iostream>

#include "src/stdlib/stdlib.hpp"
#include "src/support/text.hpp"
#include "src/tpch/tpch.hpp"

int main(int argc, char** argv) {
  const tydi::tpch::QueryCase* q19 = tydi::tpch::find_query("TPC-H 19");
  if (q19 == nullptr) {
    std::cerr << "TPC-H 19 not registered\n";
    return 1;
  }

  std::cout << "Raw SQL:\n" << q19->raw_sql << "\n";

  tydi::driver::CompileResult result = tydi::tpch::compile_query(*q19);
  if (!result.success()) {
    std::cerr << "compilation failed:\n" << result.report();
    return 1;
  }

  std::size_t loc_q = tydi::support::count_tydi_loc(q19->source);
  std::size_t loc_f = tydi::tpch::fletcher_loc();
  std::size_t loc_s = tydi::stdlib::stdlib_loc();
  std::size_t loc_vhdl = tydi::support::count_vhdl_loc(result.vhdl_text);
  std::size_t loc_total = loc_q + loc_f + loc_s;

  tydi::support::TextTable table;
  table.header({"metric", "LoC"});
  table.row({"query logic (LoCq)", std::to_string(loc_q)});
  table.row({"Fletcher part (LoCf)", std::to_string(loc_f)});
  table.row({"standard library (LoCs)", std::to_string(loc_s)});
  table.row({"total Tydi-lang (LoCa)", std::to_string(loc_total)});
  table.row({"generated VHDL", std::to_string(loc_vhdl)});
  std::cout << table.render() << "\n";
  std::cout << "Rq = VHDL / query logic = "
            << tydi::support::format_fixed(
                   static_cast<double>(loc_vhdl) / static_cast<double>(loc_q),
                   2)
            << "\n";
  std::cout << "Ra = VHDL / total = "
            << tydi::support::format_fixed(static_cast<double>(loc_vhdl) /
                                               static_cast<double>(loc_total),
                                           2)
            << "\n";
  std::cout << "\n" << result.sugar_stats.summary() << "\n";

  if (argc > 1) {
    std::ofstream out(argv[1], std::ios::binary);
    out << result.vhdl_text;
    std::cout << "VHDL written to " << argv[1] << "\n";
  }
  return 0;
}
