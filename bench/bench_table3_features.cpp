// Experiment E3/E4 — **Table III** (comparison with other high-level HDLs)
// and **Table II** (variable-based features).
//
// Table III's Tydi-lang row claims: supported design aspects = architecture
// + configuration (not functionality), paradigm = built-in typed streams +
// OOP with templates, output = VHDL (via the Tydi-IR backend). Instead of
// asserting this, the harness *measures* it: one probe program per feature
// is compiled and the row is derived from what actually works.
#include <iostream>

#include "src/driver/compiler.hpp"
#include "src/support/text.hpp"

namespace {

struct Probe {
  std::string feature;
  std::string source;
  std::string top;
  bool expect_success = true;
};

bool run_probe(const Probe& probe) {
  tydi::driver::CompileOptions options;
  options.top = probe.top;
  tydi::driver::CompileResult result =
      tydi::driver::compile_source(probe.source, options);
  return result.success() == probe.expect_success;
}

const char* kArchitectureProbe = R"tydi(
type t_byte = Stream(Bit(8), d=1, c=2);
streamlet pass_s { a: t_byte in, b: t_byte out, }
impl stage of process_unit_s<type t_byte, type t_byte> @ external { }
impl arch_probe of pass_s {
  instance s1(stage),
  instance s2(stage),
  a => s1.in_,
  s1.out => s2.in_,
  s2.out => b,
}
)tydi";

const char* kConfigurationProbe = R"tydi(
const width = 16;
const lanes = 4;
type t_cfg = Stream(Bit(width * lanes), d=1, c=2);
streamlet cfg_s { a: t_cfg in, b: t_cfg out, }
impl cfg_probe of cfg_s {
  instance add(adder_i<type t_cfg, type t_cfg>),
  a => add.in_,
  add.out => b,
}
)tydi";

const char* kTypedStreamProbe = R"tydi(
Group Pixel { r: Bit(8), g: Bit(8), b: Bit(8), }
Union Token { pixel: Bit(24), control: Bit(4), }
type t_pixels = Stream(Pixel, t=2.0, d=2, c=7);
type t_tokens = Stream(Token, d=1, c=2);
streamlet typed_s { p: t_pixels in, q: t_pixels out, t: t_tokens in, u: t_tokens out, }
impl typed_probe of typed_s {
  p => q,
  t => u,
}
)tydi";

const char* kTemplateProbe = R"tydi(
type t_small = Stream(Bit(4), d=1, c=2);
type t_big = Stream(Bit(64), d=1, c=2);
streamlet generic_s<T: type, n: int> { i: T in [n], o: T out [n], }
impl generic_i<T: type, n: int> of generic_s<type T, n> {
  for k in 0->n {
    i[k] => o[k],
  }
}
streamlet tmpl_top_s { a: t_small in, b: t_small out, c: t_big in, d: t_big out, }
impl tmpl_probe of tmpl_top_s {
  instance small(generic_i<type t_small, 1>),
  instance big(generic_i<type t_big, 1>),
  a => small.i[0],
  small.o[0] => b,
  c => big.i[0],
  big.o[0] => d,
}
)tydi";

// Behaviour (functionality) is *not* expressible as synthesizable logic in
// Tydi-lang: an impl body only accepts structure. A body statement that is
// not structural must be rejected.
const char* kNoFunctionalityProbe = R"tydi(
type t_x = Stream(Bit(8), d=1, c=2);
streamlet f_s { a: t_x in, b: t_x out, }
impl func_probe of f_s {
  b <= a + 1;
}
)tydi";

// Table II probes: for / if / assert.
const char* kForProbe = R"tydi(
type t_f = Stream(Bit(8), d=1, c=2);
streamlet for_s { a: t_f in [4], b: t_f out [4], }
impl for_probe of for_s {
  for i in 0->4 {
    a[i] => b[i],
  }
}
)tydi";

const char* kIfProbe = R"tydi(
const wide = true;
type t_i = Stream(Bit(8), d=1, c=2);
streamlet if_s { a: t_i in, b: t_i out, }
impl if_probe of if_s {
  if (wide) {
    a => b,
  } else {
    instance v(voider_i<type t_i>),
    a => v.in_,
  }
}
)tydi";

const char* kAssertOkProbe = R"tydi(
const width = 32;
type t_a = Stream(Bit(width), d=1, c=2);
streamlet as_s { a: t_a in, b: t_a out, }
impl assert_probe of as_s {
  assert(width % 8 == 0, "width must be byte aligned");
  a => b,
}
)tydi";

const char* kAssertFailProbe = R"tydi(
const width = 33;
type t_a = Stream(Bit(width), d=1, c=2);
streamlet as_s { a: t_a in, b: t_a out, }
impl assert_fail_probe of as_s {
  assert(width % 8 == 0, "width must be byte aligned");
  a => b,
}
)tydi";

const char* kMathProbe = R"tydi(
const decimal_width_memory = 15;
type t_dec = Stream(Bit(ceil(log2(10 ** decimal_width_memory - 1))), d=1, c=2);
streamlet m_s { a: t_dec in, b: t_dec out, }
impl math_probe of m_s {
  a => b,
}
)tydi";

}  // namespace

int main() {
  std::vector<Probe> probes = {
      {"architecture (instances + connections)", kArchitectureProbe,
       "arch_probe", true},
      {"configuration (variables + math)", kConfigurationProbe, "cfg_probe",
       true},
      {"built-in typed streams (Group/Union/Stream)", kTypedStreamProbe,
       "typed_probe", true},
      {"OOP with templates (type + int params)", kTemplateProbe, "tmpl_probe",
       true},
      {"functionality (behaviour) NOT expressible", kNoFunctionalityProbe,
       "func_probe", false},
      {"Table II: generative for", kForProbe, "for_probe", true},
      {"Table II: generative if/else", kIfProbe, "if_probe", true},
      {"Table II: assert (holds)", kAssertOkProbe, "assert_probe", true},
      {"Table II: assert (violated -> error)", kAssertFailProbe,
       "assert_fail_probe", false},
      {"math system: Bit(ceil(log2(10**15-1)))", kMathProbe, "math_probe",
       true},
  };

  std::cout << "=== Table III / Table II: measured Tydi-lang feature row "
               "===\n\n";
  tydi::support::TextTable table;
  table.header({"feature", "expected", "measured", "verdict"});
  bool all_ok = true;
  for (const Probe& probe : probes) {
    bool ok = run_probe(probe);
    all_ok = all_ok && ok;
    table.row({probe.feature,
               probe.expect_success ? "compiles" : "rejected",
               ok ? (probe.expect_success ? "compiles" : "rejected")
                  : "UNEXPECTED",
               ok ? "ok" : "MISMATCH"});
  }
  std::cout << table.render() << "\n";

  // VHDL output check (Table III "Output" column).
  tydi::driver::CompileOptions options;
  options.top = "arch_probe";
  auto result = tydi::driver::compile_source(kArchitectureProbe, options);
  bool vhdl_ok = result.success() &&
                 result.vhdl_text.find("entity") != std::string::npos &&
                 result.vhdl_text.find("architecture") != std::string::npos;
  std::cout << "Output = VHDL via Tydi-IR backend: "
            << (vhdl_ok ? "yes" : "NO") << "\n";
  std::cout << "\nTable III row (measured): base language = none; design "
               "aspects = architecture + configuration; paradigm = built-in "
               "typed stream, OOP with templates; output = VHDL\n";
  return all_ok && vhdl_ok ? 0 : 1;
}
