// Experiment E2 — **Figure 4** + the non-sugared Table IV row: automatic
// voider and duplicator insertion.
//
// Three measurements:
//  1. per-query sugaring statistics (how many duplicators/voiders the
//     compiler inserts — the plumbing a designer would otherwise write);
//  2. the sugared vs non-sugared Q1 source sizes (Table IV rows 1-2) and
//     the check that both produce the *identical amount* of VHDL;
//  3. proof that sugaring is load-bearing: compiling the sugared Q1 source
//     with sugaring disabled yields DRC port-use violations.
#include <iostream>

#include "src/support/text.hpp"
#include "src/tpch/tpch.hpp"

int main() {
  std::cout << "=== Fig. 4: auto insertion of voider and duplicator ===\n\n";

  tydi::support::TextTable stats;
  stats.header({"Query", "duplicators", "voiders", "dup channels",
                "DRC clean"});
  for (const auto& q : tydi::tpch::queries()) {
    tydi::driver::CompileResult result = tydi::tpch::compile_query(q);
    stats.row({q.id + (q.note.empty() ? "" : " " + q.note),
               std::to_string(result.sugar_stats.duplicators_inserted),
               std::to_string(result.sugar_stats.voiders_inserted),
               std::to_string(result.sugar_stats.duplicated_channels),
               result.drc_report.clean() ? "yes" : "NO"});
  }
  std::cout << stats.render() << "\n";

  const tydi::tpch::QueryCase* q1 = tydi::tpch::find_query("TPC-H 1");
  const tydi::tpch::QueryCase* q1_manual =
      tydi::tpch::find_query("TPC-H 1", "(without sugaring)");
  if (q1 == nullptr || q1_manual == nullptr) {
    std::cerr << "Q1 variants not registered\n";
    return 1;
  }

  auto sugared = tydi::tpch::compile_query(*q1);
  auto manual = tydi::tpch::compile_query(*q1_manual);
  std::size_t sugared_loc = tydi::support::count_tydi_loc(q1->source);
  std::size_t manual_loc = tydi::support::count_tydi_loc(q1_manual->source);
  std::size_t sugared_vhdl = tydi::support::count_vhdl_loc(sugared.vhdl_text);
  std::size_t manual_vhdl = tydi::support::count_vhdl_loc(manual.vhdl_text);

  std::cout << "Q1 design-effort saved by sugaring (paper: 402 -> 284 "
               "LoC):\n";
  std::cout << "  manual plumbing : " << manual_loc << " LoC\n";
  std::cout << "  with sugaring   : " << sugared_loc << " LoC  ("
            << tydi::support::format_fixed(
                   100.0 * (1.0 - static_cast<double>(sugared_loc) /
                                      static_cast<double>(manual_loc)),
                   1)
            << " % saved)\n";
  std::cout << "  identical VHDL  : " << sugared_vhdl << " vs " << manual_vhdl
            << " lines -> "
            << (sugared_vhdl == manual_vhdl ? "yes" : "NO") << "\n\n";

  // 3. Without sugaring the fan-out/unused-port style of the sugared source
  //    violates the "each port used exactly once" rule.
  tydi::driver::CompileOptions no_sugar;
  no_sugar.top = q1->top_impl;
  no_sugar.sugaring = false;
  no_sugar.drc.port_use_count_is_error = false;  // count, don't abort
  no_sugar.emit_vhdl = false;
  std::vector<tydi::driver::NamedSource> sources;
  sources.push_back({"fletcher.td", tydi::tpch::fletcher_source()});
  sources.push_back({"q1.td", std::string(q1->source)});
  auto unsugared = tydi::driver::compile(sources, no_sugar);
  std::size_t violations =
      unsugared.drc_report.count(tydi::drc::Rule::kPortUseCount);
  std::cout << "Compiling the sugared Q1 source with sugaring disabled:\n";
  std::cout << "  port-use-count violations: " << violations
            << "  (each one is a duplicator/voider the designer would have "
               "to write)\n";
  return violations > 0 && sugared_vhdl == manual_vhdl ? 0 : 1;
}
