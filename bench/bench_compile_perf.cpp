// Experiment E6 — compiler pipeline performance (Fig. 3).
//
// google-benchmark timings for each frontend phase (parse, elaborate,
// sugar, lower, DRC, IR emission, VHDL emission) on the real TPC-H inputs,
// plus a template-instantiation scaling benchmark (parallelize with growing
// channel counts exercises the monomorphiser and the generative for).
//
// With `--json <path>` the harness instead compiles every TPC-H query once
// and writes per-phase wall-clock (pipeline order, lowering counted once)
// and the template-instantiation cache hit rate to `path`.
#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <iostream>

#include "src/driver/compiler.hpp"
#include "src/parser/parser.hpp"
#include "src/stdlib/stdlib.hpp"
#include "src/tpch/tpch.hpp"

namespace {

const tydi::tpch::QueryCase& query(std::size_t index) {
  return tydi::tpch::queries()[index];
}

std::vector<tydi::driver::NamedSource> sources_for(
    const tydi::tpch::QueryCase& q) {
  return {{"fletcher.td", tydi::tpch::fletcher_source()},
          {"query.td", std::string(q.source)}};
}

void BM_ParseOnly(benchmark::State& state) {
  const auto& q = query(static_cast<std::size_t>(state.range(0)));
  std::string text = std::string(tydi::stdlib::stdlib_source()) +
                     tydi::tpch::fletcher_source() + std::string(q.source);
  for (auto _ : state) {
    tydi::support::SourceManager sm;
    tydi::support::DiagnosticEngine diags(&sm);
    auto id = sm.add("bench.td", text);
    auto file = tydi::lang::parse(sm.text(id), id, diags);
    benchmark::DoNotOptimize(file);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}

void BM_FullPipeline(benchmark::State& state) {
  const auto& q = query(static_cast<std::size_t>(state.range(0)));
  auto sources = sources_for(q);
  tydi::driver::CompileOptions options;
  options.top = q.top_impl;
  options.sugaring = q.sugaring;
  for (auto _ : state) {
    auto result = tydi::driver::compile(sources, options);
    benchmark::DoNotOptimize(result.vhdl_text);
  }
}

void BM_FrontendOnly(benchmark::State& state) {
  const auto& q = query(static_cast<std::size_t>(state.range(0)));
  auto sources = sources_for(q);
  tydi::driver::CompileOptions options;
  options.top = q.top_impl;
  options.sugaring = q.sugaring;
  options.emit_ir = false;
  options.emit_vhdl = false;
  for (auto _ : state) {
    auto result = tydi::driver::compile(sources, options);
    benchmark::DoNotOptimize(result.design);
  }
}

void BM_TemplateInstantiationScaling(benchmark::State& state) {
  const int channels = static_cast<int>(state.range(0));
  std::string source = R"tydi(
type t_data = Stream(Bit(64), d=1, c=2);
impl pu of process_unit_s<type t_data, type t_data> @ external { }
streamlet top_s { feed: t_data in, result: t_data out, }
impl scale_top of top_s {
  instance par(parallelize_i<type t_data, type t_data, impl pu, @CH@>),
  feed => par.in_,
  par.out => result,
}
)tydi";
  std::string needle = "@CH@";
  source.replace(source.find(needle), needle.size(),
                 std::to_string(channels));
  tydi::driver::CompileOptions options;
  options.top = "scale_top";
  options.emit_vhdl = false;
  for (auto _ : state) {
    auto result = tydi::driver::compile_source(source, options);
    benchmark::DoNotOptimize(result.design);
  }
  state.SetComplexityN(channels);
}

int run_compile_json(const char* path) {
  // One full compile per TPC-H query case; phases accumulate in pipeline
  // order (the driver lowers to Tydi-IR exactly once per compile, so the
  // "lower" phase is counted once however many backends consume it).
  tydi::driver::PhaseTimings phases;
  // Seed canonical pipeline order: some cases skip phases (Q1 runs without
  // sugaring), and the aggregate must still print in pipeline order.
  for (const char* phase : {"parse", "elaborate", "sugar", "lower", "drc",
                            "ir", "vhdl"}) {
    phases.add(phase, 0.0);
  }
  tydi::elab::InstantiationStats cache;
  std::size_t compiled = 0;
  std::size_t failed = 0;
  for (const tydi::tpch::QueryCase& q : tydi::tpch::queries()) {
    tydi::driver::CompileOptions options;
    options.top = q.top_impl;
    options.sugaring = q.sugaring;
    auto result = tydi::driver::compile(sources_for(q), options);
    if (!result.success()) {
      ++failed;
      continue;
    }
    ++compiled;
    for (const auto& e : result.phase_ms.entries()) phases.add(e.phase, e.ms);
    cache += result.template_cache;
  }

  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot write " << path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"benchmark\": \"compile_pipeline_tpch\",\n"
      << "  \"queries_compiled\": " << compiled << ",\n"
      << "  \"queries_failed\": " << failed << ",\n"
      << "  \"phase_ms\": {";
  const auto& entries = phases.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << (i > 0 ? ", " : "") << "\"" << entries[i].phase
        << "\": " << entries[i].ms;
  }
  out << "},\n"
      << "  \"total_ms\": " << phases.total_ms() << ",\n"
      << "  \"template_cache\": {\n"
      << "    \"streamlet_hits\": " << cache.streamlet_hits << ",\n"
      << "    \"streamlet_misses\": " << cache.streamlet_misses << ",\n"
      << "    \"impl_hits\": " << cache.impl_hits << ",\n"
      << "    \"impl_misses\": " << cache.impl_misses << ",\n"
      << "    \"hit_rate\": " << cache.hit_rate() << "\n"
      << "  }\n"
      << "}\n";
  std::cout << "compile pipeline: " << compiled << " queries, "
            << phases.total_ms() << " ms total ("
            << phases.render() << "); template cache hit rate "
            << cache.hit_rate() << "; JSON written to " << path << "\n";
  if (failed > 0) {
    std::cerr << "error: " << failed << " quer"
              << (failed == 1 ? "y" : "ies") << " failed to compile\n";
    return 1;
  }
  return 0;
}

}  // namespace

BENCHMARK(BM_ParseOnly)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FrontendOnly)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FullPipeline)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TemplateInstantiationScaling)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();

int main(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return run_compile_json(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
