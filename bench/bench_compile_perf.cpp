// Experiment E6 — compiler pipeline performance (Fig. 3).
//
// google-benchmark timings for each frontend phase (parse, elaborate,
// sugar, lower, DRC, IR emission, VHDL emission) on the real TPC-H inputs,
// plus a template-instantiation scaling benchmark (parallelize with growing
// channel counts exercises the monomorphiser and the generative for).
//
// With `--json <path>` the harness instead measures the cold-vs-warm
// behaviour of a driver::CompileSession on the TPC-H workload: cold rounds
// (default 3) each compile every query in a *fresh* session, warm rounds
// (default 5) recompile the same queries in one surviving session so the
// process-wide template memo and parse cache serve them. Identical work per
// round, so each side reports its fastest round (noise-robust minimum).
// Per-phase wall-clock (pipeline order), template-cache hit rates, emitted
// bytes, emission chunk allocations and peak RSS are upserted as the
// "compile_pipeline_tpch" section of the given JSON trajectory file
// (BENCH_compile.json at the repo root).
//
// The JSON run also *gates*: it exits non-zero when any query fails, when a
// warm recompile is not byte-identical to the cold compile, when the warm
// template-cache hit rate falls below --min-warm-hit-rate (default 0.9), or
// when the warm speedup falls below --min-warm-speedup (default 1.25; the
// committed BENCH_compile.json tracks the actual measured value).
//
// A second section, "compile_parallel", measures the parallel
// compile_batch at --jobs {1, 2, 4}: per-lane cold/warm wall clock, warm
// throughput and warm hit rate, gated on byte-identity across worker
// counts, the warm hit-rate threshold at every count, and a jobs=4-over-
// jobs=1 speedup of --min-parallel-speedup (default 1.5) when the machine
// has >= 4 hardware threads (a no-regression floor of
// --min-parallel-no-regression, default 0.7, otherwise).
//
// A third section, "obs_overhead", interleaves warm rounds with the span
// tracer enabled and disabled and gates the traced/untraced ratio at
// --max-obs-overhead (default 1.05), plus a registry-vs-result-struct
// consistency check — the metrics the daemon exports and the numbers this
// harness writes come from the same counters and must agree exactly.
//
// A fourth section, "service_overload", drives the admission-controlled
// compile service at 4x its capacity (4x as many retrying clients as
// workers) and gates overload safety: every accepted response must be
// byte-identical to a single-shot compile, every shed must classify as
// kUnavailable (exit 12) with a retry-after hint inside
// --max-shed-reply-ms (default 250), and the warm accepted throughput must
// stay within --min-service-throughput-ratio (default 0.95) of the pre-
// queue thread-per-request baseline (same worker count compiling directly
// through one shared session) when the machine has >= 4 hardware threads
// (no-regression floor of 0.7 otherwise).
//
// A fifth section, "service_restart", exercises the durable compile
// journal: a journaled daemon compiles the workload cold, restarts on the
// same journal, and replays. Gates: every journaled key replays, the
// post-replay responses are byte-identical to the pre-restart daemon's,
// the post-replay memo hit rate clears --min-warm-hit-rate, and
// interactive traffic racing the replay is either served byte-identically
// or shed within --max-shed-reply-ms.
#include <benchmark/benchmark.h>

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/bench_json.hpp"
#include "src/driver/compiler.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/parser/parser.hpp"
#include "src/service/service.hpp"
#include "src/stdlib/stdlib.hpp"
#include "src/support/retry.hpp"
#include "src/support/status.hpp"
#include "src/support/text.hpp"
#include "src/tpch/tpch.hpp"

namespace {

const tydi::tpch::QueryCase& query(std::size_t index) {
  return tydi::tpch::queries()[index];
}

std::vector<tydi::driver::NamedSource> sources_for(
    const tydi::tpch::QueryCase& q) {
  return {{"fletcher.td", tydi::tpch::fletcher_source()},
          {"query.td", std::string(q.source)}};
}

void BM_ParseOnly(benchmark::State& state) {
  const auto& q = query(static_cast<std::size_t>(state.range(0)));
  std::string text = std::string(tydi::stdlib::stdlib_source()) +
                     tydi::tpch::fletcher_source() + std::string(q.source);
  for (auto _ : state) {
    tydi::support::SourceManager sm;
    tydi::support::DiagnosticEngine diags(&sm);
    auto id = sm.add("bench.td", text);
    auto file = tydi::lang::parse(sm.text(id), id, diags);
    benchmark::DoNotOptimize(file);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}

void BM_FullPipeline(benchmark::State& state) {
  const auto& q = query(static_cast<std::size_t>(state.range(0)));
  auto sources = sources_for(q);
  tydi::driver::CompileOptions options;
  options.top = q.top_impl;
  options.sugaring = q.sugaring;
  for (auto _ : state) {
    auto result = tydi::driver::compile(sources, options);
    benchmark::DoNotOptimize(result.vhdl_text);
  }
}

void BM_FrontendOnly(benchmark::State& state) {
  const auto& q = query(static_cast<std::size_t>(state.range(0)));
  auto sources = sources_for(q);
  tydi::driver::CompileOptions options;
  options.top = q.top_impl;
  options.sugaring = q.sugaring;
  options.emit_ir = false;
  options.emit_vhdl = false;
  for (auto _ : state) {
    auto result = tydi::driver::compile(sources, options);
    benchmark::DoNotOptimize(result.design);
  }
}

void BM_TemplateInstantiationScaling(benchmark::State& state) {
  const int channels = static_cast<int>(state.range(0));
  std::string source = R"tydi(
type t_data = Stream(Bit(64), d=1, c=2);
impl pu of process_unit_s<type t_data, type t_data> @ external { }
streamlet top_s { feed: t_data in, result: t_data out, }
impl scale_top of top_s {
  instance par(parallelize_i<type t_data, type t_data, impl pu, @CH@>),
  feed => par.in_,
  par.out => result,
}
)tydi";
  std::string needle = "@CH@";
  source.replace(source.find(needle), needle.size(),
                 std::to_string(channels));
  tydi::driver::CompileOptions options;
  options.top = "scale_top";
  options.emit_vhdl = false;
  for (auto _ : state) {
    auto result = tydi::driver::compile_source(source, options);
    benchmark::DoNotOptimize(result.design);
  }
  state.SetComplexityN(channels);
}

// Pre-overhaul numbers measured on this container at the seed of this PR
// (single-string CodeWriter, per-compile template cache): the JSON section
// records them so the trajectory shows the emission-phase reduction against
// the same workload.
constexpr double kPreOverhaulTotalMs = 11.02;
constexpr double kPreOverhaulVhdlMs = 5.00;
constexpr double kPreOverhaulHitRate = 0.104;

/// One batch round (all TPC-H queries through one session pass).
struct RoundMetrics {
  tydi::driver::PhaseTimings phases;
  tydi::elab::InstantiationStats cache;
  std::size_t bytes = 0;                    ///< IR + VHDL bytes emitted
  std::uint64_t emission_chunk_allocs = 0;  ///< CodeWriter chunks allocated
  std::size_t failed = 0;
};

RoundMetrics run_round(tydi::driver::CompileSession& session,
                       std::vector<std::string>* texts_out,
                       bool* determinism_ok,
                       const std::vector<std::string>* cold_texts) {
  RoundMetrics m;
  // Seed canonical pipeline order: some cases skip phases (Q1 runs without
  // sugaring), and the aggregate must still print in pipeline order.
  for (const char* phase : tydi::driver::kPipelinePhases) {
    m.phases.add(phase, 0.0);
  }
  std::size_t index = 0;
  const std::uint64_t allocs_before =
      tydi::support::CodeWriter::process_chunk_allocs();
  for (const tydi::tpch::QueryCase& q : tydi::tpch::queries()) {
    auto result = tydi::tpch::compile_query(q, session);
    // One text slot per query, failed or not, so determinism comparisons
    // across rounds always align by query index. Failed compiles keep an
    // empty slot and are excluded from the byte comparison.
    std::string text;
    if (!result.success()) {
      ++m.failed;
    } else {
      for (const auto& e : result.phase_ms.entries()) {
        m.phases.add(e.phase, e.ms);
      }
      m.cache += result.template_cache;
      m.bytes += result.vhdl_text.size() + result.ir_text.size();
      text = std::move(result.vhdl_text);
      text += '\x01';
      text += result.ir_text;
      if (cold_texts != nullptr && determinism_ok != nullptr &&
          index < cold_texts->size() && !(*cold_texts)[index].empty() &&
          text != (*cold_texts)[index]) {
        *determinism_ok = false;
      }
    }
    if (texts_out != nullptr) texts_out->push_back(std::move(text));
    ++index;
  }
  m.emission_chunk_allocs =
      tydi::support::CodeWriter::process_chunk_allocs() - allocs_before;
  return m;
}

long peak_rss_kb() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return -1;
  return usage.ru_maxrss;  // kilobytes on Linux
}

void append_round_json(std::ostream& out, const char* name,
                       const RoundMetrics& m) {
  out << "  \"" << name << "\": {\n    \"phase_ms\": {";
  const auto& entries = m.phases.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << (i > 0 ? ", " : "") << "\"" << entries[i].phase
        << "\": " << entries[i].ms;
  }
  out << "},\n"
      << "    \"total_ms\": " << m.phases.total_ms() << ",\n"
      << "    \"template_cache\": {\n"
      << "      \"streamlet_hits\": " << m.cache.streamlet_hits << ",\n"
      << "      \"streamlet_misses\": " << m.cache.streamlet_misses << ",\n"
      << "      \"impl_hits\": " << m.cache.impl_hits << ",\n"
      << "      \"impl_misses\": " << m.cache.impl_misses << ",\n"
      << "      \"session_hits\": " << m.cache.session_hits() << ",\n"
      << "      \"hit_rate\": " << m.cache.hit_rate() << "\n"
      << "    },\n"
      << "    \"bytes_emitted\": " << m.bytes << ",\n"
      << "    \"emission_chunk_allocs\": " << m.emission_chunk_allocs << "\n"
      << "  }";
}

struct JsonOptions {
  const char* path = nullptr;
  int cold_rounds = 5;
  int warm_rounds = 7;
  double min_warm_hit_rate = 0.9;
  double min_warm_speedup = 1.25;
  /// Required warm speedup of --jobs 4 over --jobs 1 when the machine has
  /// >= 4 hardware threads. Below that the gate degrades to a
  /// no-regression floor: parallel dispatch on an undersized machine must
  /// not cost more than scheduling noise.
  double min_parallel_speedup = 1.5;
  double min_parallel_no_regression = 0.7;
  /// Ceiling on (warm ms with span tracing enabled) / (warm ms with it
  /// disabled). The obs layer promises low single-digit-percent overhead;
  /// this gate is where that promise is enforced.
  double max_obs_overhead = 1.05;
  /// Floor on (accepted throughput at 4x offered load) / (thread-per-
  /// request baseline throughput) when the machine has >= 4 hardware
  /// threads. The bounded queue + worker pool must not tax the accepted
  /// path; admission control only sheds the excess.
  double min_service_throughput_ratio = 0.95;
  /// A no-regression floor used instead on undersized machines, mirroring
  /// the parallel-compile gate.
  double min_service_no_regression = 0.7;
  /// Ceiling on the slowest observed shed reply, in ms: overload answers
  /// must be prompt precisely when the service is busiest.
  double max_shed_reply_ms = 250.0;
};

/// Observability overhead + consistency: warm TPC-H rounds with the span
/// tracer enabled vs disabled, interleaved (ABAB...) so machine drift hits
/// both sides equally, minimum-of-rounds per side. Gates on the
/// traced/untraced ratio and on the registry counters agreeing exactly
/// with the per-compile result structs (the "metrics can never disagree
/// with BENCH_*.json" invariant).
int run_obs_overhead_json(const JsonOptions& options) {
  tydi::obs::SpanTracer& tracer = tydi::obs::SpanTracer::global();
  auto& reg = tydi::obs::MetricsRegistry::global();
  constexpr int kRoundsPerSide = 5;

  tydi::driver::CompileSession session;
  run_round(session, nullptr, nullptr, nullptr);  // warm the caches

  // Registry-vs-struct consistency on one warm compile.
  const std::uint64_t vhdl_bytes_before =
      reg.counter("tydi.vhdl.bytes_emitted").value();
  const std::uint64_t elab_before =
      reg.counter("tydi.elab.instantiation_hits").value() +
      reg.counter("tydi.elab.instantiation_misses").value();
  const tydi::tpch::QueryCase* probe = tydi::tpch::find_query("TPC-H 6");
  tydi::driver::CompileResult probe_result =
      tydi::tpch::compile_query(*probe, session);
  const bool registry_consistent =
      probe_result.success() &&
      reg.counter("tydi.vhdl.bytes_emitted").value() - vhdl_bytes_before ==
          probe_result.vhdl_text.size() &&
      reg.counter("tydi.elab.instantiation_hits").value() +
              reg.counter("tydi.elab.instantiation_misses").value() -
              elab_before ==
          probe_result.template_cache.hits() +
              probe_result.template_cache.misses();

  double traced_ms = 0.0;
  double untraced_ms = 0.0;
  std::size_t spans_per_round = 0;
  std::size_t failed = 0;
  bool have_traced = false;
  bool have_untraced = false;
  for (int round = 0; round < 2 * kRoundsPerSide; ++round) {
    const bool traced = round % 2 == 0;
    tracer.clear();
    tracer.set_enabled(traced);
    const auto start = std::chrono::steady_clock::now();
    RoundMetrics m = run_round(session, nullptr, nullptr, nullptr);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    failed += m.failed;
    if (traced) {
      spans_per_round = tracer.size();
      if (!have_traced || ms < traced_ms) traced_ms = ms;
      have_traced = true;
    } else {
      if (!have_untraced || ms < untraced_ms) untraced_ms = ms;
      have_untraced = true;
    }
  }
  tracer.set_enabled(false);
  tracer.clear();

  const double overhead_ratio =
      untraced_ms > 0.0 ? traced_ms / untraced_ms : 0.0;

  std::ostringstream section;
  section << "{\n"
          << "  \"benchmark\": \"obs_overhead\",\n"
          << "  \"rounds_per_side\": " << kRoundsPerSide << ",\n"
          << "  \"warm_ms_untraced\": " << untraced_ms << ",\n"
          << "  \"warm_ms_traced\": " << traced_ms << ",\n"
          << "  \"overhead_ratio\": " << overhead_ratio << ",\n"
          << "  \"max_overhead_ratio\": " << options.max_obs_overhead << ",\n"
          << "  \"spans_per_round\": " << spans_per_round << ",\n"
          << "  \"registry_consistent\": "
          << (registry_consistent ? "true" : "false") << "\n"
          << "}";
  if (!benchjson::upsert_section(options.path, "obs_overhead",
                                 section.str())) {
    std::cerr << "error: cannot write " << options.path << "\n";
    return 1;
  }

  std::cout << "obs overhead: untraced " << untraced_ms << " ms, traced "
            << traced_ms << " ms, ratio " << overhead_ratio << " (max "
            << options.max_obs_overhead << "); " << spans_per_round
            << " span(s)/round; registry "
            << (registry_consistent ? "consistent" : "INCONSISTENT") << "\n";

  int rc = 0;
  if (failed > 0) {
    std::cerr << "error: " << failed << " compile(s) failed\n";
    rc = 1;
  }
  if (!registry_consistent) {
    std::cerr << "error: metrics registry disagrees with compile result "
                 "structs\n";
    rc = 1;
  }
  if (overhead_ratio > options.max_obs_overhead) {
    std::cerr << "error: span tracing overhead " << overhead_ratio
              << "x above ceiling " << options.max_obs_overhead << "x\n";
    rc = 1;
  }
  return rc;
}

/// Parallel compile_batch throughput at --jobs {1, 2, 4}: cold round (fresh
/// session) + warm rounds through the surviving session per worker count.
/// Gates: every worker count must reproduce the jobs=1 texts byte for byte
/// (cold and warm), reach the warm hit-rate threshold, and — when the
/// machine actually has >= 4 hardware threads — jobs=4 must beat jobs=1 by
/// min_parallel_speedup on the best warm round (no-regression floor
/// otherwise; the committed BENCH_compile.json records what was measured).
int run_compile_parallel_json(const JsonOptions& options) {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::vector<tydi::driver::BatchJob> jobs = tydi::tpch::batch_jobs();
  constexpr int kWorkerCounts[] = {1, 2, 4};
  constexpr int kWarmRounds = 5;

  struct Lane {
    int workers = 0;
    double cold_ms = 0.0;
    double warm_ms = 0.0;  ///< best warm round
    double warm_hit_rate = 0.0;
    double warm_queries_per_sec = 0.0;
    bool identical = true;  ///< byte-identical to the jobs=1 texts
    std::size_t failed = 0;
  };
  std::vector<Lane> lanes;
  // Texts of the jobs=1 cold round; every other (lane, round) must match.
  std::vector<std::string> golden_vhdl;
  std::vector<std::string> golden_ir;

  for (int workers : kWorkerCounts) {
    Lane lane;
    lane.workers = workers;
    tydi::driver::BatchOptions batch_options;
    batch_options.jobs = workers;
    batch_options.keep_texts = true;
    tydi::driver::CompileSession session;

    auto timed_round = [&](double& ms_out) {
      const auto start = std::chrono::steady_clock::now();
      tydi::driver::BatchResult result =
          tydi::driver::compile_batch(session, jobs, batch_options);
      ms_out = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                   .count();
      lane.failed += result.failures;
      if (golden_vhdl.empty()) {
        for (const tydi::driver::BatchEntry& e : result.entries) {
          golden_vhdl.push_back(e.vhdl_text);
          golden_ir.push_back(e.ir_text);
        }
      } else {
        for (std::size_t i = 0; i < result.entries.size(); ++i) {
          if (result.entries[i].vhdl_text != golden_vhdl[i] ||
              result.entries[i].ir_text != golden_ir[i]) {
            lane.identical = false;
          }
        }
      }
      return result;
    };

    timed_round(lane.cold_ms);
    for (int round = 0; round < kWarmRounds; ++round) {
      double round_ms = 0.0;
      tydi::driver::BatchResult warm = timed_round(round_ms);
      if (round == 0 || round_ms < lane.warm_ms) lane.warm_ms = round_ms;
      lane.warm_hit_rate = warm.template_cache.hit_rate();
    }
    lane.warm_queries_per_sec =
        lane.warm_ms > 0.0
            ? static_cast<double>(jobs.size()) / (lane.warm_ms / 1000.0)
            : 0.0;
    lanes.push_back(lane);
  }

  const double speedup_j4 =
      lanes.back().warm_ms > 0.0 ? lanes.front().warm_ms / lanes.back().warm_ms
                                 : 0.0;
  const bool scaling_expected = hw >= 4;
  const double required =
      scaling_expected ? options.min_parallel_speedup
                       : options.min_parallel_no_regression;

  std::ostringstream section;
  section << "{\n"
          << "  \"benchmark\": \"compile_parallel\",\n"
          << "  \"hardware_concurrency\": " << hw << ",\n"
          << "  \"queries\": " << jobs.size() << ",\n"
          << "  \"warm_rounds\": " << kWarmRounds << ",\n"
          << "  \"lanes\": [\n";
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const Lane& lane = lanes[i];
    section << "    {\"jobs\": " << lane.workers
            << ", \"cold_ms\": " << lane.cold_ms
            << ", \"warm_ms\": " << lane.warm_ms
            << ", \"warm_queries_per_sec\": " << lane.warm_queries_per_sec
            << ", \"warm_hit_rate\": " << lane.warm_hit_rate
            << ", \"identical\": " << (lane.identical ? "true" : "false")
            << "}" << (i + 1 < lanes.size() ? "," : "") << "\n";
  }
  section << "  ],\n"
          << "  \"speedup_jobs4_over_jobs1\": " << speedup_j4 << ",\n"
          << "  \"scaling_expected\": "
          << (scaling_expected ? "true" : "false") << ",\n"
          << "  \"required_speedup\": " << required << "\n"
          << "}";
  if (!benchjson::upsert_section(options.path, "compile_parallel",
                                 section.str())) {
    std::cerr << "error: cannot write " << options.path << "\n";
    return 1;
  }

  std::cout << "compile parallel:";
  for (const Lane& lane : lanes) {
    std::cout << " jobs=" << lane.workers << " warm " << lane.warm_ms
              << " ms (hit rate " << lane.warm_hit_rate << ")";
  }
  std::cout << "; jobs=4 speedup " << speedup_j4 << "x (required " << required
            << (scaling_expected ? ", hw >= 4" : ", no-regression floor")
            << ")\n";

  int rc = 0;
  for (const Lane& lane : lanes) {
    if (lane.failed > 0) {
      std::cerr << "error: jobs=" << lane.workers << ": " << lane.failed
                << " compile(s) failed\n";
      rc = 1;
    }
    if (!lane.identical) {
      std::cerr << "error: jobs=" << lane.workers
                << " output differs from jobs=1\n";
      rc = 1;
    }
    if (lane.warm_hit_rate < options.min_warm_hit_rate) {
      std::cerr << "error: jobs=" << lane.workers << " warm hit rate "
                << lane.warm_hit_rate << " below threshold "
                << options.min_warm_hit_rate << "\n";
      rc = 1;
    }
  }
  if (speedup_j4 < required) {
    std::cerr << "error: jobs=4 speedup " << speedup_j4
              << "x below required " << required << "x\n";
    rc = 1;
  }
  return rc;
}

int run_compile_json(const JsonOptions& options) {
  // Cold: every round in a *fresh* session, so each pays the full
  // monomorphisation cost; the fastest round is reported (identical work
  // per round, so the minimum is the noise-robust statistic on shared
  // machines). The last cold session is kept and becomes the warm one.
  std::vector<std::string> cold_texts;
  bool determinism_ok = true;
  RoundMetrics cold;
  bool have_cold = false;
  auto session = std::make_unique<tydi::driver::CompileSession>();
  for (int round = 0; round < options.cold_rounds; ++round) {
    if (round > 0) session = std::make_unique<tydi::driver::CompileSession>();
    RoundMetrics candidate = run_round(
        *session, cold_texts.empty() ? &cold_texts : nullptr,
        &determinism_ok, cold_texts.empty() ? nullptr : &cold_texts);
    if (!have_cold || candidate.phases.total_ms() < cold.phases.total_ms()) {
      cold.phases = candidate.phases;
      cold.bytes = candidate.bytes;
      cold.emission_chunk_allocs = candidate.emission_chunk_allocs;
    }
    cold.cache = candidate.cache;  // identical work per round; keep the last
    cold.failed = std::max(cold.failed, candidate.failed);
    have_cold = true;
  }

  // Warm: recompile the identical workload in the surviving session — the
  // memo and parse cache serve it. Every warm round must reproduce the
  // cold bytes exactly; minimum-of-rounds again.
  RoundMetrics warm;
  bool have_warm = false;
  for (int round = 0; round < options.warm_rounds; ++round) {
    RoundMetrics candidate =
        run_round(*session, nullptr, &determinism_ok, &cold_texts);
    if (!have_warm ||
        candidate.phases.total_ms() < warm.phases.total_ms()) {
      warm.phases = candidate.phases;
      warm.bytes = candidate.bytes;
      warm.emission_chunk_allocs = candidate.emission_chunk_allocs;
    }
    warm.cache = candidate.cache;  // identical work per round; keep the last
    warm.failed = std::max(warm.failed, candidate.failed);
    have_warm = true;
  }

  const double warm_speedup =
      warm.phases.total_ms() > 0.0
          ? cold.phases.total_ms() / warm.phases.total_ms()
          : 0.0;
  const double warm_hit_rate = warm.cache.hit_rate();

  std::ostringstream section;
  section << "{\n"
          << "  \"benchmark\": \"compile_pipeline_tpch\",\n"
          << "  \"queries_compiled\": "
          << (tydi::tpch::queries().size() - cold.failed) << ",\n"
          << "  \"queries_failed\": " << cold.failed + warm.failed << ",\n"
          << "  \"baseline_pre_overhaul\": {\"total_ms\": "
          << kPreOverhaulTotalMs << ", \"vhdl_ms\": " << kPreOverhaulVhdlMs
          << ", \"hit_rate\": " << kPreOverhaulHitRate << "},\n";
  append_round_json(section, "cold", cold);
  section << ",\n";
  append_round_json(section, "warm", warm);
  section << ",\n"
          << "  \"cold_rounds\": " << options.cold_rounds << ",\n"
          << "  \"warm_rounds\": " << options.warm_rounds << ",\n"
          << "  \"warm_speedup\": " << warm_speedup << ",\n"
          << "  \"warm_hit_rate\": " << warm_hit_rate << ",\n"
          << "  \"determinism_ok\": " << (determinism_ok ? "true" : "false")
          << ",\n"
          << "  \"hardware_concurrency\": "
          << std::thread::hardware_concurrency() << ",\n"
          << "  \"peak_rss_kb\": " << peak_rss_kb() << "\n"
          << "}";

  if (!benchjson::upsert_section(options.path, "compile_pipeline_tpch",
                                 section.str())) {
    std::cerr << "error: cannot write " << options.path << "\n";
    return 1;
  }

  std::cout << "compile pipeline (cold): " << cold.phases.total_ms()
            << " ms (" << cold.phases.render() << "); hit rate "
            << cold.cache.hit_rate() << "\n"
            << "compile pipeline (warm): " << warm.phases.total_ms()
            << " ms (" << warm.phases.render() << "); hit rate "
            << warm_hit_rate << "; session hits "
            << warm.cache.session_hits() << "\n"
            << "warm speedup " << warm_speedup << "x; determinism "
            << (determinism_ok ? "ok" : "VIOLATED") << "; bytes "
            << cold.bytes << "; emission chunk allocs cold "
            << cold.emission_chunk_allocs << " / warm "
            << warm.emission_chunk_allocs << "; peak RSS " << peak_rss_kb()
            << " kB; JSON written to " << options.path << "\n";

  int rc = 0;
  if (cold.failed + warm.failed > 0) {
    std::cerr << "error: " << cold.failed + warm.failed
              << " compile(s) failed\n";
    rc = 1;
  }
  if (!determinism_ok) {
    std::cerr << "error: warm recompile is not byte-identical to cold\n";
    rc = 1;
  }
  if (warm_hit_rate < options.min_warm_hit_rate) {
    std::cerr << "error: warm hit rate " << warm_hit_rate
              << " below threshold " << options.min_warm_hit_rate << "\n";
    rc = 1;
  }
  if (warm_speedup < options.min_warm_speedup) {
    std::cerr << "error: warm speedup " << warm_speedup
              << "x below threshold " << options.min_warm_speedup << "x\n";
    rc = 1;
  }
  return rc;
}

}  // namespace

BENCHMARK(BM_ParseOnly)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FrontendOnly)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FullPipeline)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TemplateInstantiationScaling)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();

/// Overload safety of the admission-controlled compile service: 4x as many
/// retrying clients as workers, all requesting warm TPC-H Q6. Gates:
/// accepted responses byte-identical to a single-shot compile, sheds
/// classified kUnavailable with a prompt retry-after reply, and accepted
/// throughput within min_service_throughput_ratio of the pre-queue
/// thread-per-request baseline (same worker count, same shared session).
int run_service_overload_json(const JsonOptions& options) {
  const unsigned hw = std::thread::hardware_concurrency();
  const int workers = static_cast<int>(std::min(4u, std::max(2u, hw)));
  const int clients = 4 * workers;
  constexpr int kAcceptedPerClient = 12;
  const int accepted_target = clients * kAcceptedPerClient;
  using Clock = std::chrono::steady_clock;

  // Single-shot reference payload: one request against an idle service.
  std::string reference;
  {
    tydi::service::ServiceConfig config;
    config.workers = 1;
    tydi::service::CompileService svc(config);
    tydi::service::Response r = svc.handle_line("TPCH 6 vhdl");
    if (!r.ok()) {
      std::cerr << "error: reference compile failed: " << r.payload << "\n";
      return 1;
    }
    reference = r.payload;
  }

  // Baseline: the pre-queue thread-per-request shape — `workers` threads
  // compiling the same total directly through one shared warm session.
  double baseline_rps = 0.0;
  {
    tydi::driver::CompileSession session;
    const tydi::tpch::QueryCase* q = tydi::tpch::find_query("TPC-H 6");
    (void)tydi::tpch::compile_query(*q, session);  // warm the caches
    std::atomic<int> baseline_failed{0};
    const int per_thread = accepted_target / workers;
    const auto start = Clock::now();
    {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        threads.emplace_back([&]() {
          for (int i = 0; i < per_thread; ++i) {
            if (!tydi::tpch::compile_query(*q, session).success()) {
              ++baseline_failed;
            }
          }
        });
      }
      for (std::thread& t : threads) t.join();
    }
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (baseline_failed.load() != 0) {
      std::cerr << "error: " << baseline_failed.load()
                << " baseline compile(s) failed\n";
      return 1;
    }
    baseline_rps =
        wall_s > 0.0 ? static_cast<double>(per_thread * workers) / wall_s
                     : 0.0;
  }

  // Overloaded service: bounded queue, fixed pool, 4x clients retrying on
  // shed (honoring the retry-after hint, capped so the queue stays fed).
  tydi::service::ServiceConfig config;
  config.workers = workers;
  config.queue_capacity = static_cast<std::size_t>(2 * workers);
  tydi::service::CompileService svc(config);
  {
    tydi::service::Response warm = svc.handle_line("TPCH 6 vhdl");
    if (!warm.ok()) {
      std::cerr << "error: warmup request failed: " << warm.payload << "\n";
      return 1;
    }
  }

  std::atomic<int> accepted{0};
  std::atomic<int> mismatched{0};
  std::atomic<int> unexpected{0};
  std::atomic<int> shed{0};
  std::atomic<std::int64_t> worst_shed_reply_us{0};
  const auto start = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c]() {
        int landed = 0;
        int attempt = 0;
        while (landed < kAcceptedPerClient) {
          ++attempt;
          const auto t0 = Clock::now();
          tydi::service::Response r = svc.handle_line("TPCH 6 vhdl");
          const auto reply_us =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - t0)
                  .count();
          if (r.ok()) {
            ++landed;
            ++accepted;
            if (r.payload != reference) ++mismatched;
            continue;
          }
          if (r.status.code() !=
              tydi::support::StatusCode::kUnavailable) {
            ++unexpected;
            return;
          }
          ++shed;
          std::int64_t prev = worst_shed_reply_us.load();
          while (prev < reply_us &&
                 !worst_shed_reply_us.compare_exchange_weak(prev,
                                                            reply_us)) {
          }
          // Jittered backoff, floored by the hint but capped low: the
          // point of the bench is sustained 4x offered load.
          const double delay_ms = std::min(
              std::max(r.retry_after_ms,
                       tydi::support::retry_jitter(
                           static_cast<std::uint64_t>(c), attempt)),
              5.0);
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(delay_ms));
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  const double overload_rps =
      wall_s > 0.0 ? static_cast<double>(accepted.load()) / wall_s : 0.0;
  const double ratio =
      baseline_rps > 0.0 ? overload_rps / baseline_rps : 0.0;
  const double worst_shed_reply_ms =
      static_cast<double>(worst_shed_reply_us.load()) / 1000.0;
  const bool full_gate = hw >= 4;
  const double floor = full_gate ? options.min_service_throughput_ratio
                                 : options.min_service_no_regression;

  std::ostringstream section;
  section << "{\n"
          << "  \"benchmark\": \"service_overload\",\n"
          << "  \"workers\": " << workers << ",\n"
          << "  \"queue_capacity\": " << config.queue_capacity << ",\n"
          << "  \"clients\": " << clients << ",\n"
          << "  \"accepted\": " << accepted.load() << ",\n"
          << "  \"shed\": " << shed.load() << ",\n"
          << "  \"accepted_identical\": "
          << (mismatched.load() == 0 ? "true" : "false") << ",\n"
          << "  \"worst_shed_reply_ms\": " << worst_shed_reply_ms << ",\n"
          << "  \"max_shed_reply_ms\": " << options.max_shed_reply_ms
          << ",\n"
          << "  \"baseline_rps\": " << baseline_rps << ",\n"
          << "  \"overload_rps\": " << overload_rps << ",\n"
          << "  \"throughput_ratio\": " << ratio << ",\n"
          << "  \"min_throughput_ratio\": " << floor << ",\n"
          << "  \"full_gate\": " << (full_gate ? "true" : "false") << "\n"
          << "}";
  if (!benchjson::upsert_section(options.path, "service_overload",
                                 section.str())) {
    std::cerr << "error: cannot write " << options.path << "\n";
    return 1;
  }

  std::cout << "service overload: " << accepted.load() << " accepted, "
            << shed.load() << " shed; baseline " << baseline_rps
            << " req/s, overloaded " << overload_rps << " req/s (ratio "
            << ratio << ", floor " << floor << "); worst shed reply "
            << worst_shed_reply_ms << " ms\n";

  int rc = 0;
  if (accepted.load() != accepted_target) {
    std::cerr << "error: " << accepted.load() << "/" << accepted_target
              << " requests accepted\n";
    rc = 1;
  }
  if (mismatched.load() != 0) {
    std::cerr << "error: " << mismatched.load()
              << " accepted response(s) diverged from the single-shot "
                 "compile\n";
    rc = 1;
  }
  if (unexpected.load() != 0) {
    std::cerr << "error: " << unexpected.load()
              << " request(s) failed with a class other than "
                 "unavailable\n";
    rc = 1;
  }
  if (shed.load() > 0 && worst_shed_reply_ms > options.max_shed_reply_ms) {
    std::cerr << "error: slowest shed reply " << worst_shed_reply_ms
              << " ms above ceiling " << options.max_shed_reply_ms
              << " ms\n";
    rc = 1;
  }
  if (ratio < floor) {
    std::cerr << "error: overloaded throughput ratio " << ratio
              << " below floor " << floor << "\n";
    rc = 1;
  }
  return rc;
}

/// Crash-safe warm restarts: a journaled daemon compiles the full query
/// set, restarts on the same journal, and replays. Gates: every journaled
/// key replays, post-replay responses are byte-identical to the first
/// daemon's, the post-replay memo hit rate clears min_warm_hit_rate, and
/// live interactive traffic arriving *during* replay still gets prompt
/// service — shed replies within max_shed_reply_ms, accepted replies
/// byte-identical (replay is batch-class work; it must never capture the
/// queue).
int run_service_restart_json(const JsonOptions& options) {
  using Clock = std::chrono::steady_clock;
  const std::string journal_path =
      "/tmp/tydi_bench_restart_" + std::to_string(::getpid()) + ".jnl";
  ::unlink(journal_path.c_str());

  std::vector<std::string> requests;
  for (const int q : {1, 3, 5, 6, 19}) {
    for (const char* emit : {"vhdl", "ir"}) {
      requests.push_back("TPCH " + std::to_string(q) + " " + emit);
    }
  }
  const std::size_t q6_vhdl_index = 6;  // "TPCH 6 vhdl" in `requests`

  tydi::service::ServiceConfig config;
  config.workers = 2;
  config.journal_path = journal_path;

  // Pass 1 — cold journaled daemon: serve the workload (recording every
  // key), keep the reference payloads, drain (which compacts).
  std::vector<std::string> reference(requests.size());
  double cold_workload_ms = 0.0;
  {
    tydi::service::CompileService svc(config);
    if (svc.journal() == nullptr) {
      std::cerr << "error: journal " << journal_path << " unusable\n";
      return 1;
    }
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < requests.size(); ++i) {
      tydi::service::Response r = svc.handle_line(requests[i]);
      if (!r.ok()) {
        std::cerr << "error: cold compile '" << requests[i]
                  << "' failed: " << r.payload << "\n";
        return 1;
      }
      reference[i] = std::move(r.payload);
    }
    cold_workload_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    svc.drain();
  }

  // Pass 2 — restart + replay with no competing traffic: time-to-warm,
  // first-request latency, byte identity, and the warm hit rate over the
  // replayed workload.
  double replay_ms = 0.0;
  double first_request_ms = 0.0;
  double warm_workload_ms = 0.0;
  double post_replay_hit_rate = 0.0;
  std::uint64_t replayed = 0;
  std::uint64_t skipped_stale = 0;
  int mismatched = 0;
  {
    tydi::service::CompileService svc(config);
    if (svc.journal() == nullptr ||
        svc.journal()->recovered_records() != requests.size()) {
      std::cerr << "error: restart recovered "
                << (svc.journal() ? svc.journal()->recovered_records() : 0)
                << " record(s), expected " << requests.size() << "\n";
      return 1;
    }
    const auto t0 = Clock::now();
    svc.start_replay();
    svc.wait_replay();
    replay_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    replayed = svc.replay_stats().replayed.get();
    skipped_stale = svc.replay_stats().skipped_stale.get();

    const tydi::elab::MemoStats& memo0 = svc.session().memo().stats();
    const std::uint64_t hits0 = memo0.streamlet_hits + memo0.impl_hits;
    const std::uint64_t lookups0 = hits0 + memo0.misses + memo0.stale;
    const auto t1 = Clock::now();
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const auto tr = Clock::now();
      tydi::service::Response r = svc.handle_line(requests[i]);
      if (i == 0) {
        first_request_ms = std::chrono::duration<double, std::milli>(
                               Clock::now() - tr)
                               .count();
      }
      if (!r.ok() || r.payload != reference[i]) ++mismatched;
    }
    warm_workload_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t1).count();
    const tydi::elab::MemoStats& memo1 = svc.session().memo().stats();
    const std::uint64_t hits1 = memo1.streamlet_hits + memo1.impl_hits;
    const std::uint64_t lookups1 = hits1 + memo1.misses + memo1.stale;
    post_replay_hit_rate =
        lookups1 > lookups0
            ? static_cast<double>(hits1 - hits0) /
                  static_cast<double>(lookups1 - lookups0)
            : 0.0;
    svc.drain();
  }

  // Pass 3 — restart again with a tiny queue and an interactive flood
  // racing the replay: replay is batch work, so live traffic must still be
  // served (byte-identically) or shed with a prompt kUnavailable reply.
  int live_accepted = 0;
  int live_shed = 0;
  int live_unexpected = 0;
  int live_mismatched = 0;
  double worst_live_shed_ms = 0.0;
  {
    tydi::service::ServiceConfig tight = config;
    tight.queue_capacity = 2;
    tydi::service::CompileService svc(tight);
    svc.start_replay();
    constexpr int kLiveClients = 4;
    constexpr int kLiveRequests = 3;
    std::mutex mu;
    std::vector<std::thread> threads;
    for (int c = 0; c < kLiveClients; ++c) {
      threads.emplace_back([&]() {
        for (int i = 0; i < kLiveRequests; ++i) {
          const auto t0 = Clock::now();
          tydi::service::Response r = svc.handle_line("TPCH 6 vhdl");
          const double reply_ms =
              std::chrono::duration<double, std::milli>(Clock::now() - t0)
                  .count();
          std::lock_guard lock(mu);
          if (r.ok()) {
            ++live_accepted;
            if (r.payload != reference[q6_vhdl_index]) ++live_mismatched;
          } else if (r.status.code() ==
                     tydi::support::StatusCode::kUnavailable) {
            ++live_shed;
            worst_live_shed_ms = std::max(worst_live_shed_ms, reply_ms);
          } else {
            ++live_unexpected;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    svc.wait_replay();
    svc.drain();
  }
  ::unlink(journal_path.c_str());

  std::ostringstream section;
  section << "{\n"
          << "  \"benchmark\": \"service_restart\",\n"
          << "  \"journaled_keys\": " << requests.size() << ",\n"
          << "  \"cold_workload_ms\": " << cold_workload_ms << ",\n"
          << "  \"replay_ms\": " << replay_ms << ",\n"
          << "  \"first_request_after_restart_ms\": " << first_request_ms
          << ",\n"
          << "  \"warm_workload_ms\": " << warm_workload_ms << ",\n"
          << "  \"replayed\": " << replayed << ",\n"
          << "  \"replay_skipped_stale\": " << skipped_stale << ",\n"
          << "  \"post_replay_hit_rate\": " << post_replay_hit_rate << ",\n"
          << "  \"min_warm_hit_rate\": " << options.min_warm_hit_rate
          << ",\n"
          << "  \"post_replay_identical\": "
          << (mismatched == 0 ? "true" : "false") << ",\n"
          << "  \"live_accepted_during_replay\": " << live_accepted << ",\n"
          << "  \"live_shed_during_replay\": " << live_shed << ",\n"
          << "  \"worst_live_shed_reply_ms\": " << worst_live_shed_ms
          << ",\n"
          << "  \"max_shed_reply_ms\": " << options.max_shed_reply_ms << "\n"
          << "}";
  if (!benchjson::upsert_section(options.path, "service_restart",
                                 section.str())) {
    std::cerr << "error: cannot write " << options.path << "\n";
    return 1;
  }

  std::cout << "service restart: " << replayed << "/" << requests.size()
            << " key(s) replayed in " << replay_ms
            << " ms (cold workload " << cold_workload_ms
            << " ms, warm workload " << warm_workload_ms
            << " ms); post-replay hit rate " << post_replay_hit_rate
            << "; during replay " << live_accepted << " live accepted, "
            << live_shed << " shed (worst shed reply "
            << worst_live_shed_ms << " ms)\n";

  int rc = 0;
  if (replayed != requests.size()) {
    std::cerr << "error: " << replayed << "/" << requests.size()
              << " journaled key(s) replayed\n";
    rc = 1;
  }
  if (mismatched != 0) {
    std::cerr << "error: " << mismatched
              << " post-replay response(s) diverged from the pre-restart "
                 "daemon\n";
    rc = 1;
  }
  if (post_replay_hit_rate < options.min_warm_hit_rate) {
    std::cerr << "error: post-replay hit rate " << post_replay_hit_rate
              << " below floor " << options.min_warm_hit_rate << "\n";
    rc = 1;
  }
  if (live_unexpected != 0) {
    std::cerr << "error: " << live_unexpected
              << " live request(s) during replay failed with a class "
                 "other than unavailable\n";
    rc = 1;
  }
  if (live_mismatched != 0) {
    std::cerr << "error: " << live_mismatched
              << " live response(s) during replay diverged\n";
    rc = 1;
  }
  if (live_shed > 0 && worst_live_shed_ms > options.max_shed_reply_ms) {
    std::cerr << "error: slowest shed reply during replay "
              << worst_live_shed_ms << " ms above ceiling "
              << options.max_shed_reply_ms << " ms\n";
    rc = 1;
  }
  return rc;
}

int main(int argc, char** argv) {
  JsonOptions options;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      options.path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--cold-rounds") == 0) {
      options.cold_rounds = std::max(1, std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--warm-rounds") == 0) {
      options.warm_rounds = std::max(1, std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--min-warm-hit-rate") == 0) {
      options.min_warm_hit_rate = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--min-warm-speedup") == 0) {
      options.min_warm_speedup = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--min-parallel-speedup") == 0) {
      options.min_parallel_speedup = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--min-parallel-no-regression") == 0) {
      options.min_parallel_no_regression = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--max-obs-overhead") == 0) {
      options.max_obs_overhead = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--min-service-throughput-ratio") == 0) {
      options.min_service_throughput_ratio = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--min-service-no-regression") == 0) {
      options.min_service_no_regression = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--max-shed-reply-ms") == 0) {
      options.max_shed_reply_ms = std::atof(argv[i + 1]);
    }
  }
  if (options.path != nullptr) {
    const int serial_rc = run_compile_json(options);
    const int parallel_rc = run_compile_parallel_json(options);
    const int obs_rc = run_obs_overhead_json(options);
    const int overload_rc = run_service_overload_json(options);
    const int restart_rc = run_service_restart_json(options);
    if (serial_rc != 0) return serial_rc;
    if (parallel_rc != 0) return parallel_rc;
    if (obs_rc != 0) return obs_rc;
    if (overload_rc != 0) return overload_rc;
    return restart_rc;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
