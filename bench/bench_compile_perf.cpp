// Experiment E6 — compiler pipeline performance (Fig. 3).
//
// google-benchmark timings for each frontend phase (parse, elaborate,
// sugar, DRC, IR emission, VHDL emission) on the real TPC-H inputs, plus a
// template-instantiation scaling benchmark (parallelize with growing
// channel counts exercises the monomorphiser and the generative for).
#include <benchmark/benchmark.h>

#include "src/driver/compiler.hpp"
#include "src/parser/parser.hpp"
#include "src/stdlib/stdlib.hpp"
#include "src/tpch/tpch.hpp"

namespace {

const tydi::tpch::QueryCase& query(std::size_t index) {
  return tydi::tpch::queries()[index];
}

std::vector<tydi::driver::NamedSource> sources_for(
    const tydi::tpch::QueryCase& q) {
  return {{"fletcher.td", tydi::tpch::fletcher_source()},
          {"query.td", std::string(q.source)}};
}

void BM_ParseOnly(benchmark::State& state) {
  const auto& q = query(static_cast<std::size_t>(state.range(0)));
  std::string text = std::string(tydi::stdlib::stdlib_source()) +
                     tydi::tpch::fletcher_source() + std::string(q.source);
  for (auto _ : state) {
    tydi::support::SourceManager sm;
    tydi::support::DiagnosticEngine diags(&sm);
    auto id = sm.add("bench.td", text);
    auto file = tydi::lang::parse(sm.text(id), id, diags);
    benchmark::DoNotOptimize(file);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}

void BM_FullPipeline(benchmark::State& state) {
  const auto& q = query(static_cast<std::size_t>(state.range(0)));
  auto sources = sources_for(q);
  tydi::driver::CompileOptions options;
  options.top = q.top_impl;
  options.sugaring = q.sugaring;
  for (auto _ : state) {
    auto result = tydi::driver::compile(sources, options);
    benchmark::DoNotOptimize(result.vhdl_text);
  }
}

void BM_FrontendOnly(benchmark::State& state) {
  const auto& q = query(static_cast<std::size_t>(state.range(0)));
  auto sources = sources_for(q);
  tydi::driver::CompileOptions options;
  options.top = q.top_impl;
  options.sugaring = q.sugaring;
  options.emit_ir = false;
  options.emit_vhdl = false;
  for (auto _ : state) {
    auto result = tydi::driver::compile(sources, options);
    benchmark::DoNotOptimize(result.design);
  }
}

void BM_TemplateInstantiationScaling(benchmark::State& state) {
  const int channels = static_cast<int>(state.range(0));
  std::string source = R"tydi(
type t_data = Stream(Bit(64), d=1, c=2);
impl pu of process_unit_s<type t_data, type t_data> @ external { }
streamlet top_s { feed: t_data in, result: t_data out, }
impl scale_top of top_s {
  instance par(parallelize_i<type t_data, type t_data, impl pu, @CH@>),
  feed => par.in_,
  par.out => result,
}
)tydi";
  std::string needle = "@CH@";
  source.replace(source.find(needle), needle.size(),
                 std::to_string(channels));
  tydi::driver::CompileOptions options;
  options.top = "scale_top";
  options.emit_vhdl = false;
  for (auto _ : state) {
    auto result = tydi::driver::compile_source(source, options);
    benchmark::DoNotOptimize(result.design);
  }
  state.SetComplexityN(channels);
}

}  // namespace

BENCHMARK(BM_ParseOnly)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FrontendOnly)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FullPipeline)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TemplateInstantiationScaling)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Unit(benchmark::kMicrosecond)
    ->Complexity();
