// Experiment E5 — the Sec. V simulator claims:
//
//  1. (Sec. IV-B) a processing unit with an 8-cycle service time behind
//     `parallelize_i<..., channel>` reaches the full input rate of
//     1 packet/cycle exactly when channel >= 8 — the harness sweeps the
//     channel count and prints the throughput curve;
//  2. (Sec. V-B) the simulator identifies the streaming bottleneck as the
//     output port with the longest handshake blockage — the harness shows
//     the bottleneck moving when one pipeline stage is slowed down;
//  3. (Sec. V-B) wait-for analysis detects deadlocks — demonstrated on a
//     cyclic join design.
//
// With `--json <path>` the harness additionally runs an events-per-second
// measurement of the parallelize channel sweep (trace disabled, simulation
// only — compile time excluded) and writes the numbers to a JSON file so the
// perf trajectory is tracked across PRs.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench/bench_json.hpp"
#include "src/driver/compiler.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/metrics.hpp"
#include "src/support/text.hpp"

namespace {

std::string parallelize_source(int channels) {
  std::string source = R"tydi(
package partest;
type t_data = Stream(Bit(64), d=1, c=2);
impl pu_adder of process_unit_s<type t_data, type t_data> @ external {
  sim {
    state s = "idle";
    on in_.receive {
      set s = "busy";
      delay(7);
      send(out);
      ack(in_);
      set s = "idle";
    }
  }
}
streamlet partest_top_s { feed: t_data in, result: t_data out, }
impl partest_top of partest_top_s {
  instance par(parallelize_i<type t_data, type t_data, impl pu_adder, @CH@>),
  feed => par.in_,
  par.out => result,
}
)tydi";
  std::string needle = "@CH@";
  source.replace(source.find(needle), needle.size(),
                 std::to_string(channels));
  return source;
}

tydi::sim::SimResult simulate(const std::string& source,
                              const std::string& top, int packets,
                              double interval_ns) {
  tydi::driver::CompileOptions options;
  options.top = top;
  options.emit_vhdl = false;
  tydi::driver::CompileResult compiled =
      tydi::driver::compile_source(source, options);
  if (!compiled.success()) {
    std::cerr << compiled.report();
    std::exit(1);
  }
  tydi::support::DiagnosticEngine diags;
  tydi::sim::Engine engine(compiled.design, diags);
  tydi::sim::SimOptions sim_options;
  sim_options.max_time_ns = 1.0e7;
  tydi::sim::Stimulus stim;
  stim.port = "feed";
  for (int i = 0; i < packets; ++i) {
    stim.packets.emplace_back(interval_ns * i,
                              tydi::sim::Packet{i, i == packets - 1});
  }
  sim_options.stimuli.push_back(std::move(stim));
  return engine.run(sim_options);
}

// Two-stage pipeline where the second stage is 4x slower: the bottleneck
// report must blame the channel into the slow stage.
constexpr std::string_view kPipelineSource = R"tydi(
package pipe;
type t_data = Stream(Bit(32), d=1, c=2);
impl fast_stage of process_unit_s<type t_data, type t_data> @ external {
  sim {
    on in_.receive { delay(1); send(out); ack(in_); }
  }
}
impl slow_stage of process_unit_s<type t_data, type t_data> @ external {
  sim {
    on in_.receive { delay(8); send(out); ack(in_); }
  }
}
streamlet pipe_s { feed: t_data in, result: t_data out, }
impl pipe_top of pipe_s {
  instance a(fast_stage),
  instance b(slow_stage),
  feed => a.in_,
  a.out => b.in_,
  b.out => result,
}
)tydi";

constexpr std::string_view kDeadlockSource = R"tydi(
package deadbench;
type t_data = Stream(Bit(8), d=1, c=2);
streamlet join_s { a: t_data in, b: t_data in, out: t_data out, }
impl join_i of join_s @ external {
  sim {
    on a.receive && b.receive { send(out); ack(a); ack(b); }
  }
}
streamlet deadtop_s { feed: t_data in, result: t_data out, }
impl deadtop of deadtop_s {
  instance join(join_i),
  instance dup(duplicator_i<type t_data, 2>),
  feed => join.a,
  join.out => dup.in_,
  dup.out_[0] => join.b,
  dup.out_[1] => result,
}
)tydi";

/// Events/sec measurement: simulates the parallelize sweep with tracing off
/// and measures only Engine::run wall time. The baseline constant is the
/// same measurement taken on the pre-refactor (string-keyed, std::function
/// event queue) engine on this machine, kept for trajectory tracking.
constexpr double kPreRefactorEventsPerSec = 2.1e6;

struct PerfNumbers {
  std::uint64_t events = 0;
  double wall_seconds = 0.0;
  [[nodiscard]] double events_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds
                              : 0.0;
  }
};

PerfNumbers measure_events_per_sec(int packets) {
  PerfNumbers perf;
  for (int channels : {1, 2, 4, 8, 16}) {
    tydi::driver::CompileOptions options;
    options.top = "partest_top";
    options.emit_vhdl = false;
    tydi::driver::CompileResult compiled = tydi::driver::compile_source(
        parallelize_source(channels), options);
    if (!compiled.success()) {
      std::cerr << compiled.report();
      std::exit(1);
    }
    tydi::support::DiagnosticEngine diags;
    tydi::sim::Engine engine(compiled.design, diags);
    tydi::sim::SimOptions sim_options;
    sim_options.max_time_ns = 1.0e9;
    sim_options.record_trace = false;
    tydi::sim::Stimulus stim;
    stim.port = "feed";
    for (int i = 0; i < packets; ++i) {
      stim.packets.emplace_back(10.0 * i,
                                tydi::sim::Packet{i, i == packets - 1});
    }
    sim_options.stimuli.push_back(std::move(stim));
    auto start = std::chrono::steady_clock::now();
    tydi::sim::SimResult result = engine.run(sim_options);
    auto stop = std::chrono::steady_clock::now();
    perf.events += result.events_processed;
    perf.wall_seconds +=
        std::chrono::duration<double>(stop - start).count();
  }
  return perf;
}

int run_perf_json(const char* path) {
  // Warm-up pass, then the measured pass.
  (void)measure_events_per_sec(2000);
  PerfNumbers perf = measure_events_per_sec(20000);
  double baseline = kPreRefactorEventsPerSec;
  std::ostringstream out;
  out << "  {\n"
      << "    \"benchmark\": \"sim_parallelize_channel_sweep\",\n"
      << "    \"channels\": [1, 2, 4, 8, 16],\n"
      << "    \"packets_per_run\": 20000,\n"
      << "    \"events_processed\": " << perf.events << ",\n"
      << "    \"wall_seconds\": " << perf.wall_seconds << ",\n"
      << "    \"events_per_sec\": " << perf.events_per_sec() << ",\n"
      << "    \"baseline_events_per_sec\": " << baseline << ",\n"
      << "    \"speedup_vs_baseline\": "
      << (baseline > 0.0 ? perf.events_per_sec() / baseline : 0.0) << "\n"
      << "  }";
  if (!benchjson::upsert_section(path, "\"sim_parallelize_channel_sweep\"",
                                 out.str())) {
    std::cerr << "error: cannot write " << path << "\n";
    return 1;
  }
  std::cout << "events/sec: " << perf.events_per_sec() << " ("
            << perf.events << " events in " << perf.wall_seconds
            << " s); JSON section updated in " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return run_perf_json(argv[i + 1]);
  }
  std::cout << "=== E5a: parallelize throughput sweep (Sec. IV-B claim: "
               "8 channels sustain 1 packet/cycle) ===\n\n";
  tydi::support::TextTable sweep;
  sweep.header({"channels", "packets/cycle", "of input rate", "expectation"});
  bool shape_ok = true;
  for (int channels : {1, 2, 4, 6, 8, 10, 12, 16}) {
    tydi::sim::SimResult result =
        simulate(parallelize_source(channels), "partest_top", 256, 10.0);
    double per_cycle = result.throughput("result") * 10.0;
    double expected = std::min(1.0, channels / 8.0);
    bool row_ok = per_cycle > expected * 0.9 && per_cycle < expected * 1.1;
    shape_ok = shape_ok && row_ok;
    sweep.row({std::to_string(channels),
               tydi::support::format_fixed(per_cycle, 3),
               tydi::support::format_fixed(100.0 * per_cycle, 1) + " %",
               "~" + tydi::support::format_fixed(expected, 3) +
                   (row_ok ? " ok" : " MISS")});
  }
  std::cout << sweep.render() << "\n";
  std::cout << "saturation at 8 channels: " << (shape_ok ? "yes" : "NO")
            << "\n\n";

  std::cout << "=== E5b: bottleneck identification (Sec. V-B) ===\n\n";
  tydi::sim::SimResult pipeline =
      simulate(std::string(kPipelineSource), "pipe_top", 128, 10.0);
  std::cout << tydi::sim::render_bottleneck_report(pipeline, 5) << "\n";
  const tydi::sim::ChannelStats* bottleneck = pipeline.bottleneck();
  bool blames_slow_stage =
      bottleneck != nullptr &&
      bottleneck->name.find("b.in_") != std::string::npos;
  std::cout << "bottleneck is the channel into the slow stage: "
            << (blames_slow_stage ? "yes" : "NO") << "\n\n";

  std::cout << "=== E5c: deadlock detection (Sec. V-B) ===\n\n";
  tydi::sim::SimResult dead =
      simulate(std::string(kDeadlockSource), "deadtop", 4, 10.0);
  std::cout << (dead.deadlock ? "deadlock detected" : "NO deadlock found")
            << "\n";
  if (!dead.deadlock_cycle.empty()) {
    std::cout << "wait-for cycle: "
              << tydi::support::join(dead.deadlock_cycle, " -> ") << "\n";
  }
  for (const std::string& line : dead.blocked_report) {
    std::cout << "  " << line << "\n";
  }
  return shape_ok && blames_slow_stage && dead.deadlock ? 0 : 1;
}
