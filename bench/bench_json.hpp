// Tiny shared helper for the BENCH_sim.json trajectory file.
//
// The file is a JSON array of benchmark objects, one per harness
// (channel-sweep events/sec, multi-core shard scaling, ...). Each harness
// *upserts* its own section — objects containing its marker string are
// replaced, everything else is preserved — so the benches can run in any
// order without clobbering each other. The splitting is a brace-depth scan,
// not a JSON parser: the file is machine-written by these benches only.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace benchjson {

/// Top-level objects of a JSON array file (also accepts the legacy
/// single-object format). Missing/unreadable file -> empty.
inline std::vector<std::string> read_objects(const std::string& path) {
  std::vector<std::string> objects;
  std::ifstream in(path, std::ios::binary);
  if (!in) return objects;
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  int depth = 0;
  std::size_t start = std::string::npos;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      if (depth == 0) start = i;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0 && start != std::string::npos) {
        objects.push_back(text.substr(start, i - start + 1));
        start = std::string::npos;
      }
    }
  }
  return objects;
}

/// Replaces every object containing `marker` with `object` (appended last)
/// and writes the array back. Returns false when the file cannot be
/// written.
inline bool upsert_section(const std::string& path, const std::string& marker,
                           const std::string& object) {
  std::vector<std::string> objects = read_objects(path);
  std::vector<std::string> kept;
  for (std::string& existing : objects) {
    if (existing.find(marker) == std::string::npos) {
      kept.push_back(std::move(existing));
    }
  }
  kept.push_back(object);
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "[\n";
  for (std::size_t i = 0; i < kept.size(); ++i) {
    if (!kept[i].empty() && kept[i].front() == '{') out << "  ";
    out << kept[i] << (i + 1 < kept.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return static_cast<bool>(out);
}

}  // namespace benchjson
