// Multi-core scaling harness for the sharded simulation engine
// (src/sim/shard/): events/sec at shard counts {1, 2, 4} on
//
//  1. the parallelize channel sweep (32 processing units behind a
//     demux/mux pair — the Sec. IV-B scaling design, wide enough that a
//     partition cuts it into balanced slices), and
//  2. the TPC-H Q19 design (Sec. VI: the largest Table IV query), driven by
//     generic stimuli on every table column input.
//
// Besides the numbers, the harness *gates*: it validates the partition
// invariants for several shard counts and checks that the sharded results
// are byte-identical to the single-queue engine. Any violation makes the
// process exit non-zero, which is what the CI multi-core job keys off.
//
// The credit section (BENCH_sim.json "sim_credit_mode") measures exact vs
// credit-batched acks on a *saturated* pipeline chain — the regime where
// the exact protocol degrades to per-timestamp ack-fixpoint rounds — and
// gates on: credit functionally equivalent to exact, credit events/sec >=
// exact events/sec at 2+ shards, and columnar-trace slab allocations
// staying chunked (<= 1 per 1024 traced events).
//
// The fault-injection sweep (BENCH_sim.json "sim_fault_sweep") re-runs the
// saturated chain under seed-derived fault plans — delayed mailbox posts,
// barrier jitter, shard stalls, withheld credit flushes — across seeds ×
// shards {2,4} × {exact,credit} and gates on: exact stays byte-identical
// and credit stays functionally equivalent to the fault-free reference.
// A final negative control withholds every credit ack forever and requires
// the watchdog to convert the hang into SimResult::aborted with non-empty
// per-shard forensics.
//
// The obs section (BENCH_sim.json "sim_obs_overhead") interleaves traced
// and untraced runs of the grid workload and gates the traced events/sec
// at >= 0.95 of the untraced rate, plus a check that the metrics registry
// mirrors (tydi.sim.runs, tydi.sim.last.events) agree with SimResult.
//
// With `--json <path>` the measurements are upserted into the BENCH_sim.json
// trajectory array. `--packets <n>` shrinks the measured run for smoke use;
// `--fault-seeds <n>` sets the sweep width (default 64).
#include <chrono>
#include <cstring>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/bench_json.hpp"
#include "src/driver/compiler.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/metrics.hpp"
#include "src/sim/shard/partition.hpp"
#include "src/sim/trace.hpp"
#include "src/support/text.hpp"
#include "src/tpch/tpch.hpp"

namespace {

std::string parallelize_source(int channels) {
  std::string source = R"tydi(
package partest;
type t_data = Stream(Bit(64), d=1, c=2);
impl pu_adder of process_unit_s<type t_data, type t_data> @ external {
  sim {
    state s = "idle";
    on in_.receive {
      set s = "busy";
      delay(7);
      send(out);
      ack(in_);
      set s = "idle";
    }
  }
}
streamlet partest_top_s { feed: t_data in, result: t_data out, }
impl partest_top of partest_top_s {
  instance par(parallelize_i<type t_data, type t_data, impl pu_adder, @CH@>),
  feed => par.in_,
  par.out => result,
}
)tydi";
  std::string needle = "@CH@";
  source.replace(source.find(needle), needle.size(),
                 std::to_string(channels));
  return source;
}

/// 16 independent 8-stage pipelines, one top input/output pair each: the
/// partitioner's best case (BFS keeps chains whole, zero cross-shard
/// channels, the conservative window degenerates to free-running shards).
/// This is the upper bound of the engine's scaling; the cut designs above
/// pay the time-window synchronization.
constexpr std::string_view kGridSource = R"tydi(
package grid;
type t_word = Stream(Bit(32), d=1, c=2);
streamlet stage_s<T: type> { in_: T in, out: T out, }
impl pipeline_i<T: type, stage: impl of stage_s, n: int> of stage_s<type T> {
  instance st(stage) [n],
  in_ => st[0].in_,
  for i in 0->n-1 {
    st[i].out => st[i+1].in_,
  }
  st[n-1].out => out,
}
impl reg_stage of stage_s<type t_word> @ external {
  sim {
    on in_.receive {
      delay(2);
      send(out);
      ack(in_);
    }
  }
}
streamlet grid_s<n: int> { feed: t_word in [n], drained: t_word out [n], }
impl grid_top of grid_s<16> {
  instance ch(pipeline_i<type t_word, impl reg_stage, 8>) [16],
  for i in 0->16 {
    feed[i] => ch[i].in_,
    ch[i].out => drained[i],
  }
}
)tydi";

/// A single 48-stage pipeline driven at one packet per ns against a 6 ns
/// stage service time: every channel a partition cuts runs saturated, so
/// the exact protocol pays per-timestamp ack-fixpoint rounds while credit
/// mode keeps full window rounds.
constexpr std::string_view kSaturatedChainSource = R"tydi(
package satchain;
type t_word = Stream(Bit(32), d=1, c=2);
streamlet stage_s<T: type> { in_: T in, out: T out, }
impl pipeline_i<T: type, stage: impl of stage_s, n: int> of stage_s<type T> {
  instance st(stage) [n],
  in_ => st[0].in_,
  for i in 0->n-1 {
    st[i].out => st[i+1].in_,
  }
  st[n-1].out => out,
}
impl slow_stage of stage_s<type t_word> @ external {
  sim {
    on in_.receive {
      delay(6);
      send(out);
      ack(in_);
    }
  }
}
streamlet sat_s { feed: t_word in, drained: t_word out, }
impl sat_top of sat_s {
  instance pipe(pipeline_i<type t_word, impl slow_stage, 48>),
  feed => pipe.in_,
  pipe.out => drained,
}
)tydi";

tydi::sim::SimOptions generic_options(const tydi::elab::Design& design,
                                      int packets, int shards,
                                      bool record_trace,
                                      double interval_ns = 10.0) {
  tydi::sim::SimOptions options;
  options.max_time_ns = 1.0e9;
  options.record_trace = record_trace;
  options.shards = shards;
  options.stimuli = tydi::sim::generic_stimuli(design, packets, interval_ns);
  return options;
}

struct Measurement {
  int shards = 1;
  std::uint64_t events = 0;
  double wall_seconds = 0.0;
  [[nodiscard]] double events_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds
                              : 0.0;
  }
};

struct Workload {
  std::string name;
  tydi::driver::CompileResult compiled;
  int packets = 0;
  std::vector<Measurement> runs;
  bool determinism_ok = true;
  std::string determinism_why;
};

Measurement measure(Workload& workload, int shards,
                    tydi::sim::AckMode ack_mode = tydi::sim::AckMode::kExact,
                    double interval_ns = 10.0) {
  tydi::support::DiagnosticEngine diags;
  tydi::sim::Engine engine(workload.compiled.design, diags);
  tydi::sim::SimOptions options = generic_options(
      workload.compiled.design, workload.packets, shards,
      /*record_trace=*/false, interval_ns);
  options.ack_mode = ack_mode;
  auto start = std::chrono::steady_clock::now();
  tydi::sim::SimResult result = engine.run(options);
  auto stop = std::chrono::steady_clock::now();
  Measurement m;
  m.shards = shards;
  m.events = result.events_processed;
  m.wall_seconds = std::chrono::duration<double>(stop - start).count();
  return m;
}

/// Exact vs credit at one shard count on the saturated chain (best of
/// `reps` each; events/sec comparisons on shared CI runners need the min
/// wall clock, not a single sample).
struct CreditComparison {
  int shards = 1;
  Measurement exact;
  Measurement credit;
  [[nodiscard]] double ratio() const {
    double base = exact.events_per_sec();
    return base > 0.0 ? credit.events_per_sec() / base : 0.0;
  }
};

CreditComparison compare_credit(Workload& workload, int shards, int reps) {
  CreditComparison cmp;
  cmp.shards = shards;
  for (int r = 0; r < reps; ++r) {
    Measurement exact =
        measure(workload, shards, tydi::sim::AckMode::kExact, 1.0);
    Measurement credit =
        measure(workload, shards, tydi::sim::AckMode::kCredit, 1.0);
    if (r == 0 || exact.wall_seconds < cmp.exact.wall_seconds) {
      cmp.exact = exact;
    }
    if (r == 0 || credit.wall_seconds < cmp.credit.wall_seconds) {
      cmp.credit = credit;
    }
  }
  return cmp;
}

void check_determinism(Workload& workload, int packets) {
  tydi::support::DiagnosticEngine diags;
  tydi::sim::Engine engine(workload.compiled.design, diags);
  tydi::sim::SimResult reference = engine.run(generic_options(
      workload.compiled.design, packets, 1, /*record_trace=*/true));
  for (int shards : {2, 4}) {
    tydi::sim::SimResult sharded = engine.run(generic_options(
        workload.compiled.design, packets, shards, /*record_trace=*/true));
    std::string why;
    if (!tydi::sim::results_identical(reference, sharded, &why)) {
      workload.determinism_ok = false;
      workload.determinism_why =
          std::to_string(shards) + " shards: " + why;
      return;
    }
  }
}

bool check_partitions(Workload& workload, std::vector<std::string>& errors) {
  tydi::support::DiagnosticEngine diags;
  tydi::sim::SimOptions options =
      generic_options(workload.compiled.design, 1, 1, false);
  for (int shards : {2, 4, 7}) {
    for (bool auto_partition : {true, false}) {
      tydi::sim::SimGraph graph;
      if (!tydi::sim::build_sim_graph(workload.compiled.design, options,
                                      diags, graph)) {
        errors.push_back(workload.name + ": graph build failed");
        return false;
      }
      tydi::sim::shard::PartitionStats stats =
          tydi::sim::shard::partition_graph(graph, shards, auto_partition);
      std::vector<std::string> local;
      if (!tydi::sim::shard::validate_partition(graph, stats, local)) {
        for (const std::string& e : local) {
          errors.push_back(workload.name + " (shards=" +
                           std::to_string(shards) + "): " + e);
        }
      }
    }
  }
  return errors.empty();
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  int packets = 20000;
  int fault_seeds = 64;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--packets") == 0) {
      packets = std::max(1, std::atoi(argv[i + 1]));
    }
    if (std::strcmp(argv[i], "--fault-seeds") == 0) {
      fault_seeds = std::max(1, std::atoi(argv[i + 1]));
    }
  }

  std::vector<Workload> workloads;
  {
    Workload sweep;
    sweep.name = "parallelize_c32";
    tydi::driver::CompileOptions options;
    options.top = "partest_top";
    options.emit_vhdl = false;
    sweep.compiled =
        tydi::driver::compile_source(parallelize_source(32), options);
    sweep.packets = packets;
    workloads.push_back(std::move(sweep));
  }
  {
    Workload q19;
    q19.name = "tpch_q19";
    const tydi::tpch::QueryCase* query = tydi::tpch::find_query("TPC-H 19");
    if (query == nullptr) {
      std::cerr << "error: TPC-H 19 case missing\n";
      return 1;
    }
    q19.compiled = tydi::tpch::compile_query(*query);
    q19.packets = std::max(1, packets / 10);
    workloads.push_back(std::move(q19));
  }
  {
    Workload grid;
    grid.name = "pipeline_grid_16x8";
    tydi::driver::CompileOptions options;
    options.top = "grid_top";
    options.emit_vhdl = false;
    grid.compiled =
        tydi::driver::compile_source(std::string(kGridSource), options);
    grid.packets = std::max(1, packets / 4);
    workloads.push_back(std::move(grid));
  }
  for (const Workload& w : workloads) {
    if (!w.compiled.success()) {
      std::cerr << w.name << " failed to compile:\n" << w.compiled.report();
      return 1;
    }
  }

  // Correctness gates first: partition invariants + sharded determinism.
  std::vector<std::string> partition_errors;
  bool determinism_ok = true;
  for (Workload& w : workloads) {
    check_partitions(w, partition_errors);
    check_determinism(w, std::max(64, packets / 100));
    determinism_ok = determinism_ok && w.determinism_ok;
  }
  for (const std::string& error : partition_errors) {
    std::cerr << "partition error: " << error << "\n";
  }
  for (const Workload& w : workloads) {
    if (!w.determinism_ok) {
      std::cerr << "determinism violation in " << w.name << ": "
                << w.determinism_why << "\n";
    }
  }

  // Scaling measurement (warm-up pass at 1 shard, then the recorded runs).
  for (Workload& w : workloads) {
    Workload warm;
    warm.name = w.name;
    warm.compiled = std::move(w.compiled);
    warm.packets = std::max(1, w.packets / 10);
    (void)measure(warm, 1);
    w.compiled = std::move(warm.compiled);
    for (int shards : {1, 2, 4}) {
      w.runs.push_back(measure(w, shards));
    }
  }

  // --- Credit-mode section: saturated chain, exact vs batched acks -------
  Workload chain;
  chain.name = "saturated_chain_48";
  {
    tydi::driver::CompileOptions chain_options;
    chain_options.top = "sat_top";
    chain_options.emit_vhdl = false;
    chain.compiled = tydi::driver::compile_source(
        std::string(kSaturatedChainSource), chain_options);
    if (!chain.compiled.success()) {
      std::cerr << "saturated_chain_48 failed to compile:\n"
                << chain.compiled.report();
      return 1;
    }
    chain.packets = std::max(1, packets / 4);
  }

  // Functional-equivalence gate (exact@1 reference vs credit at 2/4
  // shards) + the columnar-trace allocation gauge on the same runs.
  bool credit_equivalent = true;
  std::string credit_why;
  std::uint64_t trace_events = 0;
  std::uint64_t trace_slab_allocs = 0;
  {
    int check_packets = std::max(64, chain.packets / 10);
    tydi::support::DiagnosticEngine diags;
    tydi::sim::Engine engine(chain.compiled.design, diags);
    tydi::sim::SimOptions reference_options =
        generic_options(chain.compiled.design, check_packets, 1,
                        /*record_trace=*/true, /*interval_ns=*/1.0);
    std::uint64_t slabs_before = tydi::sim::TraceBuffer::slabs_allocated();
    tydi::sim::SimResult reference = engine.run(reference_options);
    for (int shards : {2, 4}) {
      tydi::sim::SimOptions credit_options =
          generic_options(chain.compiled.design, check_packets, shards,
                          /*record_trace=*/true, /*interval_ns=*/1.0);
      credit_options.ack_mode = tydi::sim::AckMode::kCredit;
      tydi::sim::SimResult credit = engine.run(credit_options);
      trace_events += credit.trace.size();
      std::string why;
      if (!tydi::sim::results_functionally_equivalent(reference, credit,
                                                      &why)) {
        credit_equivalent = false;
        credit_why = std::to_string(shards) + " shards: " + why;
        break;
      }
    }
    trace_events += reference.trace.size();
    trace_slab_allocs =
        tydi::sim::TraceBuffer::slabs_allocated() - slabs_before;
  }
  // Columnar slabs hold 4096 events; even counting per-shard buffers plus
  // the merge copy, one allocation per 1024 traced events is generous.
  bool trace_allocs_ok =
      trace_slab_allocs <= std::max<std::uint64_t>(16, trace_events / 1024);

  std::vector<CreditComparison> credit_runs;
  {
    (void)compare_credit(chain, 1, 1);  // warm-up
    for (int shards : {1, 2, 4}) {
      credit_runs.push_back(compare_credit(chain, shards, 2));
    }
  }
  // The gate: batched acks must never lose to per-timestamp fixpoint
  // rounds once something is actually cut (2+ shards).
  bool credit_fast = true;
  for (const CreditComparison& cmp : credit_runs) {
    if (cmp.shards >= 2 && cmp.ratio() < 1.0) credit_fast = false;
  }

  // --- Fault-injection sweep: the guard-rail gates ----------------------
  // Seed-derived fault plans perturb thread timing (and, in credit mode,
  // defer ack flushes); the protocols must not notice. Exact mode gates on
  // byte-identity with the fault-free single-shard reference, credit mode
  // on functional equivalence.
  bool fault_sweep_ok = true;
  std::string fault_why;
  int fault_runs = 0;
  {
    int sweep_packets = std::max(24, packets / 500);
    tydi::support::DiagnosticEngine diags;
    tydi::sim::Engine engine(chain.compiled.design, diags);
    tydi::sim::SimResult reference = engine.run(generic_options(
        chain.compiled.design, sweep_packets, 1, /*record_trace=*/true,
        /*interval_ns=*/1.0));
    for (int seed = 1; seed <= fault_seeds && fault_sweep_ok; ++seed) {
      for (int shards : {2, 4}) {
        for (tydi::sim::AckMode mode :
             {tydi::sim::AckMode::kExact, tydi::sim::AckMode::kCredit}) {
          tydi::sim::SimOptions options = generic_options(
              chain.compiled.design, sweep_packets, shards,
              /*record_trace=*/true, /*interval_ns=*/1.0);
          options.ack_mode = mode;
          options.fault = tydi::sim::FaultPlan::from_seed(
              static_cast<std::uint64_t>(seed));
          options.fault.delay_spin_iters = 200;  // keep the sweep cheap
          tydi::sim::SimResult faulted = engine.run(options);
          ++fault_runs;
          std::string why;
          bool ok =
              mode == tydi::sim::AckMode::kExact
                  ? tydi::sim::results_identical(reference, faulted, &why)
                  : tydi::sim::results_functionally_equivalent(reference,
                                                               faulted, &why);
          if (!ok) {
            fault_sweep_ok = false;
            fault_why = "seed " + std::to_string(seed) + " shards " +
                        std::to_string(shards) + " mode " +
                        (mode == tydi::sim::AckMode::kExact ? "exact"
                                                            : "credit") +
                        ": " + why;
            break;
          }
        }
        if (!fault_sweep_ok) break;
      }
    }
  }

  // Negative control: withhold every credit ack forever — a deliberate
  // livelock. The watchdog must convert it into an abort with forensics,
  // not a hang.
  bool watchdog_ok = true;
  std::string watchdog_why;
  {
    tydi::support::DiagnosticEngine diags;
    tydi::sim::Engine engine(chain.compiled.design, diags);
    tydi::sim::SimOptions options = generic_options(
        chain.compiled.design, 64, 2, /*record_trace=*/false,
        /*interval_ns=*/1.0);
    options.ack_mode = tydi::sim::AckMode::kCredit;
    options.fault.seed = 1;
    options.fault.withhold_acks_forever = true;
    options.watchdog_timeout_ms = 200.0;
    tydi::sim::SimResult hung = engine.run(options);
    if (!hung.aborted) {
      watchdog_ok = false;
      watchdog_why = "withheld-ack run finished instead of aborting";
    } else if (hung.abort_reason.empty()) {
      watchdog_ok = false;
      watchdog_why = "aborted without an abort_reason";
    } else if (hung.shard_forensics.empty()) {
      watchdog_ok = false;
      watchdog_why = "aborted without per-shard forensics";
    }
  }

  // --- Observability overhead: span tracing on vs off -------------------
  // The sim publishes metrics once per run and times barrier waits with
  // two clock reads per wait regardless; the only per-run delta a user can
  // toggle is span emission. Interleaved (ABAB...) min-of-N events/sec on
  // the grid workload, gated at >= 0.95 of the untraced rate. The same
  // pass checks the registry mirrors: tydi.sim.runs must advance per run
  // and the tydi.sim.last.events gauge must equal the run's event count.
  bool obs_overhead_ok = true;
  bool obs_registry_ok = true;
  double obs_traced_eps = 0.0;
  double obs_untraced_eps = 0.0;
  constexpr double kMinObsRatio = 0.95;
  {
    tydi::obs::SpanTracer& tracer = tydi::obs::SpanTracer::global();
    auto& reg = tydi::obs::MetricsRegistry::global();
    Workload& grid = workloads.back();  // pipeline_grid_16x8

    const std::uint64_t runs_before = reg.counter("tydi.sim.runs").value();
    Measurement probe = measure(grid, 2);
    obs_registry_ok =
        reg.counter("tydi.sim.runs").value() == runs_before + 1 &&
        reg.gauge("tydi.sim.last.events").value() ==
            static_cast<double>(probe.events);

    constexpr int kReps = 3;
    double traced_s = 0.0;
    double untraced_s = 0.0;
    std::uint64_t events = 0;
    for (int r = 0; r < 2 * kReps; ++r) {
      const bool traced = r % 2 == 0;
      tracer.clear();
      tracer.set_enabled(traced);
      Measurement m = measure(grid, 2);
      events = m.events;
      if (traced) {
        if (traced_s == 0.0 || m.wall_seconds < traced_s) {
          traced_s = m.wall_seconds;
        }
      } else if (untraced_s == 0.0 || m.wall_seconds < untraced_s) {
        untraced_s = m.wall_seconds;
      }
    }
    tracer.set_enabled(false);
    tracer.clear();
    obs_traced_eps =
        traced_s > 0.0 ? static_cast<double>(events) / traced_s : 0.0;
    obs_untraced_eps =
        untraced_s > 0.0 ? static_cast<double>(events) / untraced_s : 0.0;
    obs_overhead_ok = obs_untraced_eps > 0.0 &&
                      obs_traced_eps / obs_untraced_eps >= kMinObsRatio;
  }

  unsigned cores = std::thread::hardware_concurrency();
  tydi::support::TextTable table;
  table.header({"workload", "shards", "events", "wall s", "events/s",
                "speedup vs 1"});
  for (const Workload& w : workloads) {
    double base = w.runs.front().events_per_sec();
    for (const Measurement& m : w.runs) {
      table.row({w.name, std::to_string(m.shards), std::to_string(m.events),
                 tydi::support::format_fixed(m.wall_seconds, 4),
                 tydi::support::format_fixed(m.events_per_sec(), 0),
                 tydi::support::format_fixed(
                     base > 0.0 ? m.events_per_sec() / base : 0.0, 2)});
    }
  }
  tydi::support::TextTable credit_table;
  credit_table.header({"shards", "exact ev/s", "credit ev/s", "ratio"});
  for (const CreditComparison& cmp : credit_runs) {
    credit_table.row(
        {std::to_string(cmp.shards),
         tydi::support::format_fixed(cmp.exact.events_per_sec(), 0),
         tydi::support::format_fixed(cmp.credit.events_per_sec(), 0),
         tydi::support::format_fixed(cmp.ratio(), 2)});
  }
  std::cout << "sharded simulation scaling (" << cores
            << " hardware thread(s))\n\n"
            << table.render() << "\n"
            << "credit vs exact ack protocol (saturated_chain_48)\n\n"
            << credit_table.render() << "\n"
            << "partition invariants: "
            << (partition_errors.empty() ? "ok" : "VIOLATED") << "\n"
            << "determinism (1 vs {2,4} shards): "
            << (determinism_ok ? "ok" : "VIOLATED") << "\n"
            << "credit functional equivalence: "
            << (credit_equivalent ? "ok" : "VIOLATED " + credit_why) << "\n"
            << "credit >= exact at 2+ shards: "
            << (credit_fast ? "ok" : "VIOLATED") << "\n"
            << "trace slab allocs: " << trace_slab_allocs << " for "
            << trace_events << " traced event(s) "
            << (trace_allocs_ok ? "(ok)" : "(VIOLATED)") << "\n"
            << "fault sweep (" << fault_runs << " faulted run(s), "
            << fault_seeds << " seed(s) x shards {2,4} x {exact,credit}): "
            << (fault_sweep_ok ? "ok" : "VIOLATED " + fault_why) << "\n"
            << "watchdog converts withheld-ack hang into abort: "
            << (watchdog_ok ? "ok" : "VIOLATED " + watchdog_why) << "\n"
            << "obs overhead (traced/untraced events/s on grid): "
            << tydi::support::format_fixed(
                   obs_untraced_eps > 0.0
                       ? obs_traced_eps / obs_untraced_eps
                       : 0.0,
                   3)
            << (obs_overhead_ok ? " (ok)" : " (VIOLATED)") << "\n"
            << "obs registry mirrors sim results: "
            << (obs_registry_ok ? "ok" : "VIOLATED") << "\n";

  if (json_path != nullptr) {
    std::ostringstream out;
    out << "  {\n"
        << "    \"benchmark\": \"sim_parallel_shards\",\n"
        << "    \"hardware_concurrency\": " << cores << ",\n"
        << "    \"partition_ok\": "
        << (partition_errors.empty() ? "true" : "false") << ",\n"
        << "    \"determinism_ok\": " << (determinism_ok ? "true" : "false")
        << ",\n"
        << "    \"workloads\": [\n";
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      const Workload& w = workloads[i];
      double base = w.runs.front().events_per_sec();
      double at4 = w.runs.back().events_per_sec();
      out << "      {\n"
          << "        \"name\": \"" << w.name << "\",\n"
          << "        \"packets\": " << w.packets << ",\n"
          << "        \"runs\": [";
      for (std::size_t r = 0; r < w.runs.size(); ++r) {
        const Measurement& m = w.runs[r];
        out << (r == 0 ? "" : ", ") << "{\"shards\": " << m.shards
            << ", \"events\": " << m.events
            << ", \"wall_seconds\": " << m.wall_seconds
            << ", \"events_per_sec\": " << m.events_per_sec() << "}";
      }
      out << "],\n"
          << "        \"speedup_4_shards\": "
          << (base > 0.0 ? at4 / base : 0.0) << "\n"
          << "      }" << (i + 1 < workloads.size() ? "," : "") << "\n";
    }
    out << "    ]\n"
        << "  }";
    if (!benchjson::upsert_section(json_path, "\"sim_parallel_shards\"",
                                   out.str())) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 1;
    }
    std::ostringstream credit_out;
    credit_out << "  {\n"
               << "    \"benchmark\": \"sim_credit_mode\",\n"
               << "    \"workload\": \"" << chain.name << "\",\n"
               << "    \"packets\": " << chain.packets << ",\n"
               << "    \"hardware_concurrency\": " << cores << ",\n"
               << "    \"functional_equivalence_ok\": "
               << (credit_equivalent ? "true" : "false") << ",\n"
               << "    \"credit_not_slower_ok\": "
               << (credit_fast ? "true" : "false") << ",\n"
               << "    \"trace_events\": " << trace_events << ",\n"
               << "    \"trace_slab_allocs\": " << trace_slab_allocs << ",\n"
               << "    \"trace_allocs_ok\": "
               << (trace_allocs_ok ? "true" : "false") << ",\n"
               << "    \"runs\": [";
    for (std::size_t i = 0; i < credit_runs.size(); ++i) {
      const CreditComparison& cmp = credit_runs[i];
      credit_out << (i == 0 ? "" : ", ") << "{\"shards\": " << cmp.shards
                 << ", \"exact_events_per_sec\": "
                 << cmp.exact.events_per_sec()
                 << ", \"credit_events_per_sec\": "
                 << cmp.credit.events_per_sec()
                 << ", \"ratio\": " << cmp.ratio() << "}";
    }
    credit_out << "]\n"
               << "  }";
    if (!benchjson::upsert_section(json_path, "\"sim_credit_mode\"",
                                   credit_out.str())) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 1;
    }
    std::ostringstream fault_out;
    fault_out << "  {\n"
              << "    \"benchmark\": \"sim_fault_sweep\",\n"
              << "    \"workload\": \"" << chain.name << "\",\n"
              << "    \"seeds\": " << fault_seeds << ",\n"
              << "    \"faulted_runs\": " << fault_runs << ",\n"
              << "    \"sweep_ok\": " << (fault_sweep_ok ? "true" : "false")
              << ",\n"
              << "    \"watchdog_abort_ok\": "
              << (watchdog_ok ? "true" : "false") << "\n"
              << "  }";
    if (!benchjson::upsert_section(json_path, "\"sim_fault_sweep\"",
                                   fault_out.str())) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 1;
    }
    std::ostringstream obs_out;
    obs_out << "  {\n"
            << "    \"benchmark\": \"sim_obs_overhead\",\n"
            << "    \"workload\": \"pipeline_grid_16x8\",\n"
            << "    \"untraced_events_per_sec\": " << obs_untraced_eps
            << ",\n"
            << "    \"traced_events_per_sec\": " << obs_traced_eps << ",\n"
            << "    \"ratio\": "
            << (obs_untraced_eps > 0.0 ? obs_traced_eps / obs_untraced_eps
                                       : 0.0)
            << ",\n"
            << "    \"min_ratio\": " << kMinObsRatio << ",\n"
            << "    \"overhead_ok\": "
            << (obs_overhead_ok ? "true" : "false") << ",\n"
            << "    \"registry_ok\": "
            << (obs_registry_ok ? "true" : "false") << "\n"
            << "  }";
    if (!benchjson::upsert_section(json_path, "\"sim_obs_overhead\"",
                                   obs_out.str())) {
      std::cerr << "error: cannot write " << json_path << "\n";
      return 1;
    }
    std::cout << "JSON sections updated in " << json_path << "\n";
  }

  return partition_errors.empty() && determinism_ok && credit_equivalent &&
                 credit_fast && trace_allocs_ok && fault_sweep_ok &&
                 watchdog_ok && obs_overhead_ok && obs_registry_ok
             ? 0
             : 1;
}
