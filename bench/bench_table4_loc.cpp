// Experiment E1 — regenerates **Table IV** of the paper: "LoC for
// translating TPC-H queries to Tydi-lang".
//
// For every query the harness compiles the Tydi-lang query logic together
// with the Fletcher-generated interfaces and the standard library, emits
// VHDL, counts lines of code of each part, and prints the same columns the
// paper reports (raw SQL, LoCq, LoCa, LoCvhdl, Rq = VHDL/LoCq,
// Ra = VHDL/LoCa). Paper reference values are printed alongside.
//
// Shape criteria (absolute numbers depend on the VHDL backend):
//   - Rq >> 10 for every query; Q19 generates the most VHDL, Q6 the least;
//   - the non-sugared Q1 needs noticeably more Tydi-lang LoC than the
//     sugared Q1 while producing the same VHDL.
#include <iostream>
#include <map>

#include "src/stdlib/stdlib.hpp"
#include "src/support/text.hpp"
#include "src/tpch/tpch.hpp"

namespace {

struct PaperRow {
  std::size_t query_loc;
  std::size_t total_loc;
  std::size_t vhdl_loc;
  double rq;
  double ra;
};

const std::map<std::string, PaperRow>& paper_rows() {
  static const std::map<std::string, PaperRow> rows = {
      {"TPC-H 1 (without sugaring)", {402, 719, 7547, 18.77, 10.50}},
      {"TPC-H 1", {284, 601, 7547, 26.57, 12.56}},
      {"TPC-H 3", {166, 483, 6291, 37.90, 13.02}},
      {"TPC-H 5", {197, 514, 6992, 35.49, 13.60}},
      {"TPC-H 6", {108, 425, 4586, 42.46, 10.79}},
      {"TPC-H 19", {297, 614, 11734, 39.51, 19.11}},
  };
  return rows;
}

}  // namespace

int main() {
  std::cout << "=== Table IV: LoC for translating TPC-H queries to "
               "Tydi-lang ===\n\n";
  std::cout << "LoC Fletcher part (LoCf): measured "
            << tydi::tpch::fletcher_loc() << "  (paper: 166)\n";
  std::cout << "LoC standard library (LoCs): measured "
            << tydi::stdlib::stdlib_loc() << "  (paper: 151)\n\n";

  tydi::support::TextTable table;
  table.header({"Query", "SQL", "LoCq", "LoCa", "VHDL", "Rq", "Ra",
                "paper Rq", "paper Ra"});

  auto rows = tydi::tpch::measure_table4();
  bool all_ok = true;
  std::size_t q6_vhdl = 0;
  std::size_t q19_vhdl = 0;
  std::size_t max_vhdl = 0;
  std::size_t q1_loc = 0;
  std::size_t q1_nosugar_loc = 0;

  for (const auto& row : rows) {
    all_ok = all_ok && row.compiled_ok;
    auto paper = paper_rows().find(row.query);
    table.row({row.query, std::to_string(row.raw_sql_loc),
               std::to_string(row.query_loc), std::to_string(row.total_loc),
               std::to_string(row.vhdl_loc),
               tydi::support::format_fixed(row.ratio_query, 2),
               tydi::support::format_fixed(row.ratio_total, 2),
               paper != paper_rows().end()
                   ? tydi::support::format_fixed(paper->second.rq, 2)
                   : "-",
               paper != paper_rows().end()
                   ? tydi::support::format_fixed(paper->second.ra, 2)
                   : "-"});
    if (row.query == "TPC-H 6") q6_vhdl = row.vhdl_loc;
    if (row.query == "TPC-H 19") q19_vhdl = row.vhdl_loc;
    if (row.query == "TPC-H 1") q1_loc = row.query_loc;
    if (row.query == "TPC-H 1 (without sugaring)") {
      q1_nosugar_loc = row.query_loc;
    }
    max_vhdl = std::max(max_vhdl, row.vhdl_loc);
  }
  std::cout << table.render() << "\n";

  std::cout << "shape checks:\n";
  std::cout << "  all queries compiled: " << (all_ok ? "yes" : "NO") << "\n";
  std::cout << "  Q19 generates the most VHDL: "
            << (q19_vhdl == max_vhdl ? "yes" : "NO") << "\n";
  std::cout << "  Q6 generates the least VHDL: " << q6_vhdl
            << " (paper: also smallest)\n";
  std::cout << "  non-sugared Q1 costs more source ("
            << q1_nosugar_loc << " vs " << q1_loc << " LoC): "
            << (q1_nosugar_loc > q1_loc ? "yes" : "NO") << "\n";
  return all_ok ? 0 : 1;
}
