// Ablation harness for the design choices DESIGN.md calls out:
//
//  A1 sugaring         — what the auto duplicator/voider pass contributes:
//                        DRC violations it prevents and its compile-time
//                        cost, per TPC-H query.
//  A2 strict typing    — how many connections the strict named-equality DRC
//                        would wave through if it only checked structure
//                        (i.e. the error class the paper's rule exists to
//                        catch), measured by compiling Q19 with its
//                        @structural annotations stripped.
//  A3 stdlib RTL       — the share of the generated VHDL contributed by the
//                        hard-coded standard-library bodies (Sec. IV-C)
//                        versus pure structure: VHDL LoC with the generator
//                        enabled vs black boxes only.
#include <chrono>
#include <iostream>

#include "src/support/text.hpp"
#include "src/tpch/tpch.hpp"

namespace {

double time_compile(const tydi::tpch::QueryCase& q, bool sugaring) {
  auto start = std::chrono::steady_clock::now();
  tydi::driver::CompileOptions options;
  options.top = q.top_impl;
  options.sugaring = sugaring;
  options.drc.port_use_count_is_error = false;
  std::vector<tydi::driver::NamedSource> sources = {
      {"fletcher.td", tydi::tpch::fletcher_source()},
      {"q.td", std::string(q.source)}};
  auto result = tydi::driver::compile(sources, options);
  auto end = std::chrono::steady_clock::now();
  (void)result;
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int main() {
  std::cout << "=== A1: sugaring ablation (per query) ===\n\n";
  tydi::support::TextTable a1;
  a1.header({"Query", "violations w/o sugar", "components inserted",
             "compile ms (on)", "compile ms (off)"});
  for (const auto& q : tydi::tpch::queries()) {
    if (!q.sugaring) continue;  // the manual Q1 needs no sugaring by design
    tydi::driver::CompileOptions with;
    with.top = q.top_impl;
    std::vector<tydi::driver::NamedSource> sources = {
        {"fletcher.td", tydi::tpch::fletcher_source()},
        {"q.td", std::string(q.source)}};
    auto sugared = tydi::driver::compile(sources, with);

    tydi::driver::CompileOptions without = with;
    without.sugaring = false;
    without.drc.port_use_count_is_error = false;
    auto raw = tydi::driver::compile(sources, without);

    a1.row({q.id,
            std::to_string(
                raw.drc_report.count(tydi::drc::Rule::kPortUseCount)),
            std::to_string(sugared.sugar_stats.duplicators_inserted +
                           sugared.sugar_stats.voiders_inserted),
            tydi::support::format_fixed(time_compile(q, true), 2),
            tydi::support::format_fixed(time_compile(q, false), 2)});
  }
  std::cout << a1.render() << "\n";

  std::cout << "=== A2: strict type-equality ablation ===\n\n";
  // Strip the @structural escape hatches from Q19: every one of those
  // connections is exactly the class of error strict checking catches
  // (same bit widths, different named types).
  const tydi::tpch::QueryCase* q19 = tydi::tpch::find_query("TPC-H 19");
  if (q19 != nullptr) {
    std::string stripped(q19->source);
    std::size_t removed = 0;
    const std::string needle = " @structural";
    for (std::size_t pos = stripped.find(needle); pos != std::string::npos;
         pos = stripped.find(needle)) {
      stripped.erase(pos, needle.size());
      ++removed;
    }
    tydi::driver::CompileOptions options;
    options.top = q19->top_impl;
    options.emit_vhdl = false;
    std::vector<tydi::driver::NamedSource> sources = {
        {"fletcher.td", tydi::tpch::fletcher_source()},
        {"q.td", stripped}};
    auto result = tydi::driver::compile(sources, options);
    std::size_t caught =
        result.drc_report.count(tydi::drc::Rule::kTypeEquality);
    std::cout << "Q19 @structural annotations stripped: " << removed << "\n";
    std::cout << "strict DRC violations caught:         " << caught << "\n";
    std::cout << "(structurally these connections are bit-identical; only "
                 "named equality flags them)\n\n";
  }

  std::cout << "=== A3: stdlib RTL generator share of the VHDL ===\n\n";
  tydi::support::TextTable a3;
  a3.header({"Query", "VHDL LoC (stdlib RTL)", "VHDL LoC (black boxes)",
             "RTL share"});
  for (const auto& q : tydi::tpch::queries()) {
    if (!q.sugaring) continue;
    std::vector<tydi::driver::NamedSource> sources = {
        {"fletcher.td", tydi::tpch::fletcher_source()},
        {"q.td", std::string(q.source)}};
    tydi::driver::CompileOptions with;
    with.top = q.top_impl;
    auto rtl = tydi::driver::compile(sources, with);
    tydi::driver::CompileOptions without = with;
    without.vhdl.generate_stdlib_rtl = false;
    auto boxes = tydi::driver::compile(sources, without);
    std::size_t rtl_loc = tydi::support::count_vhdl_loc(rtl.vhdl_text);
    std::size_t box_loc = tydi::support::count_vhdl_loc(boxes.vhdl_text);
    double share =
        rtl_loc > 0
            ? 100.0 * (1.0 - static_cast<double>(box_loc) /
                                 static_cast<double>(rtl_loc))
            : 0.0;
    a3.row({q.id, std::to_string(rtl_loc), std::to_string(box_loc),
            tydi::support::format_fixed(share, 1) + " %"});
  }
  std::cout << a3.render();
  return 0;
}
